"""The matching engine: enumerate the substitutions behind ``E(O)``.

Definition 4.2 interprets a formula against an object as

    ``E(O) = ⋃ { σE | σ a substitution such that σE ≤ O }``

The set of substitutions is infinite (any variable may be bound to any
object), so a literal reading is not executable.  The engine exploits two
facts:

1. **Instantiation is monotone** in the substitution: shrinking a binding can
   only shrink ``σE`` in the sub-object order, and therefore never breaks
   ``σE ≤ O``.
2. **The union absorbs dominated contributions**: if ``σE ≤ σ'E`` then adding
   ``σE`` to the union changes nothing.

It is therefore enough to enumerate the *derivation-maximal* substitutions: a
recursive walk of formula and object chooses, for every element of a set
formula, a witness element of the corresponding set object (or lets a bare
variable vanish as ⊥), records for every variable occurrence the largest
object it may be bound to at that occurrence, and intersects (greatest lower
bound) the per-occurrence bounds of each variable.  Every substitution valid
for Definition 4.2 is dominated pointwise by one of the enumerated
substitutions, so the union over the enumerated ones equals the union over all
of them.  ``tests/test_calculus_matching.py`` cross-checks this claim against
the brute-force oracle of :func:`repro.calculus.interpretation.interpret_bruteforce`.

**Strict vs literal semantics.**  Read literally, Definition 4.2 lets a
substitution bind a variable to ⊥.  For a join formula such as Example 4.1(2)
(``[R1: {[A:X, B:Y]}, R2: {[C:Y, D:Z]}]``) a ⊥ binding for the join variable
``Y`` erases the join condition — ``[A: 2]`` is a sub-object of
``[A: 2, B: y]`` even when no R2 tuple matches ``y`` — so the literal reading
also returns the join-attribute-stripped projections of *non-matching*
tuples.  That contradicts the paper's own glosses of Examples 4.1 and 4.2
("join of R1 and R2 with join attributes B = C", "selection on A = a", ...),
which clearly intend the familiar relational behaviour.  The library therefore
defaults to the **strict** semantics — substitutions may not bind a variable
to ⊥ — which reproduces every glossed example, and exposes the literal
semantics through ``allow_bottom=True`` on every entry point.  The choice is
recorded as a deviation in ``DESIGN.md``; monotonicity (Lemma 4.1) holds under
both semantics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.core.objects import BOTTOM, TOP, ComplexObject, SetObject, TupleObject
from repro.calculus.substitution import Substitution
from repro.calculus.terms import Constant, Formula, SetFormula, TupleFormula, Variable
from repro.core.order import is_subobject

__all__ = ["match", "match_all", "count_matches"]


def match(
    formula: Formula, target: ComplexObject, *, allow_bottom: bool = False
) -> Iterator[Substitution]:
    """Yield the derivation-maximal substitutions ``σ`` with ``σE ≤ target``.

    With the default ``allow_bottom=False`` (strict semantics) substitutions
    that bind any variable to ⊥ are discarded; pass ``allow_bottom=True`` for
    the literal reading of Definition 4.2 (see the module docstring).
    Duplicate substitutions may be produced when several derivations lead to
    the same bindings; :func:`match_all` deduplicates.
    """
    if not isinstance(formula, Formula):
        raise TypeError(f"match expects a Formula, got {type(formula).__name__}")
    if not isinstance(target, ComplexObject):
        raise TypeError(f"match expects a ComplexObject target, got {type(target).__name__}")
    candidates = _match(formula, target)
    if not allow_bottom:
        candidates = [c for c in candidates if not _has_bottom_binding(c)]
    return iter(candidates)


def match_all(
    formula: Formula, target: ComplexObject, *, allow_bottom: bool = False
) -> List[Substitution]:
    """Return the deduplicated list of derivation-maximal substitutions."""
    seen = set()
    results: List[Substitution] = []
    for candidate in match(formula, target, allow_bottom=allow_bottom):
        if candidate in seen:
            continue
        seen.add(candidate)
        results.append(candidate)
    return results


def count_matches(
    formula: Formula, target: ComplexObject, *, allow_bottom: bool = False
) -> int:
    """Return the number of distinct derivation-maximal substitutions."""
    return len(match_all(formula, target, allow_bottom=allow_bottom))


def _has_bottom_binding(substitution: Substitution) -> bool:
    # ⊥ is a singleton, so the bottom test is an identity check.
    return any(value is BOTTOM for _, value in substitution.items())


def _match(formula: Formula, target: ComplexObject) -> List[Substitution]:
    # ⊤ dominates every instantiation, so every variable may be bound to ⊤.
    if target is TOP:
        return [Substitution({name: TOP for name in formula.variables()})]

    if isinstance(formula, Variable):
        # The largest object the variable can take at this occurrence is the
        # target itself.
        return [Substitution({formula.name: target})]

    if isinstance(formula, Constant):
        # A ground constant matches exactly when it is a sub-object of the
        # target; it constrains no variable.  Interned constants make the
        # frequent exact-hit case an identity check before the full test.
        if formula.value is target or is_subobject(formula.value, target):
            return [Substitution()]
        return []

    if isinstance(formula, TupleFormula):
        if not isinstance(target, TupleObject):
            # A tuple formula always instantiates to a tuple object, which can
            # only be a sub-object of a tuple (or ⊤, handled above).
            return []
        # Thread the per-attribute alternatives through a running product,
        # meeting (glb) the bindings of shared variables.
        partials: List[Substitution] = [Substitution()]
        for name, child in formula.items():
            child_matches = _match(child, target.get(name))
            if not child_matches:
                return []
            partials = [
                partial.meet(candidate) for partial in partials for candidate in child_matches
            ]
        return partials

    if isinstance(formula, SetFormula):
        if not isinstance(target, SetObject):
            return []
        partials = [Substitution()]
        for child in formula.elements:
            alternatives = _set_element_alternatives(child, target)
            if not alternatives:
                return []
            partials = [
                partial.meet(candidate) for partial in partials for candidate in alternatives
            ]
        return partials

    raise TypeError(f"not a formula: {formula!r}")


def _set_element_alternatives(child: Formula, target: SetObject) -> List[Substitution]:
    """Alternatives for one element formula of a set formula.

    Each element of the target is a possible witness.  In addition, an element
    formula whose instantiation can be ⊥ — a bare variable bound to ⊥, or the
    constant ⊥ itself — can *vanish* from the instantiated set (⊥ is dropped
    from sets by convention), which matches even the empty set.  The vanish
    alternative is only emitted when no witness exists, because with a witness
    available the vanishing binding is dominated and contributes nothing.
    """
    alternatives: List[Substitution] = []
    for element in target.elements:
        alternatives.extend(_match(child, element))
    if not alternatives:
        if isinstance(child, Variable):
            alternatives.append(Substitution({child.name: BOTTOM}))
        elif isinstance(child, Constant) and child.value is BOTTOM:
            alternatives.append(Substitution())
    return alternatives
