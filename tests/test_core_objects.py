"""Unit tests for the object constructors (repro.core.objects)."""

import pytest

from repro.core.errors import NormalizationError
from repro.core.objects import BOTTOM, TOP, Atom, Bottom, SetObject, Top, TupleObject


class TestSpecialObjects:
    def test_top_and_bottom_are_singletons(self):
        assert Top() is TOP
        assert Bottom() is BOTTOM

    def test_kinds(self):
        assert TOP.is_top and not TOP.is_bottom
        assert BOTTOM.is_bottom and not BOTTOM.is_top
        assert Atom(1).is_atom
        assert TupleObject({}).is_tuple
        assert SetObject([]).is_set

    def test_rendering(self):
        assert TOP.to_text() == "top"
        assert BOTTOM.to_text() == "bottom"


class TestAtom:
    def test_value_kept(self):
        assert Atom(5).value == 5
        assert Atom("john").value == "john"

    def test_sorts_distinguished(self):
        assert Atom(1) != Atom(1.0)
        assert Atom(1) != Atom(True)
        assert Atom(0) != Atom(False)

    def test_equal_atoms_hash_equal(self):
        assert Atom("x") == Atom("x")
        assert hash(Atom("x")) == hash(Atom("x"))

    def test_rejects_non_atomic_payloads(self):
        with pytest.raises(NormalizationError):
            Atom([1, 2])
        with pytest.raises(NormalizationError):
            Atom(None)

    def test_immutable(self):
        atom = Atom(3)
        with pytest.raises(AttributeError):
            atom.value = 4

    def test_string_rendering_quotes_when_needed(self):
        assert Atom("john").to_text() == "john"
        assert Atom("New York").to_text() == '"New York"'
        assert Atom("top").to_text() == '"top"'
        assert Atom(True).to_text() == "true"


class TestTupleObject:
    def test_missing_attribute_reads_bottom(self):
        value = TupleObject({"a": Atom(1)})
        assert value.get("b") is BOTTOM
        assert value["b"] is BOTTOM

    def test_bottom_attributes_dropped(self):
        assert TupleObject({"a": Atom(1), "b": BOTTOM}) == TupleObject({"a": Atom(1)})

    def test_top_attribute_collapses_to_top(self):
        assert TupleObject({"a": TOP, "b": Atom(2)}) is TOP

    def test_raw_keeps_bottom(self):
        raw = TupleObject.raw({"a": Atom(1), "b": BOTTOM})
        assert "b" in raw
        assert raw != TupleObject({"a": Atom(1)})

    def test_attribute_order_is_irrelevant(self):
        assert TupleObject({"a": Atom(1), "b": Atom(2)}) == TupleObject(
            {"b": Atom(2), "a": Atom(1)}
        )

    def test_kwargs_constructor(self):
        assert TupleObject(a=Atom(1)) == TupleObject({"a": Atom(1)})

    def test_replace_and_without(self):
        value = TupleObject({"a": Atom(1), "b": Atom(2)})
        assert value.replace(a=Atom(5)) == TupleObject({"a": Atom(5), "b": Atom(2)})
        assert value.replace(a=BOTTOM) == TupleObject({"b": Atom(2)})
        assert value.without("b") == TupleObject({"a": Atom(1)})

    def test_rejects_non_object_values(self):
        with pytest.raises(NormalizationError):
            TupleObject({"a": 1})

    def test_rejects_bad_attribute_names(self):
        with pytest.raises(NormalizationError):
            TupleObject({"": Atom(1)})

    def test_len_and_items(self):
        value = TupleObject({"b": Atom(2), "a": Atom(1)})
        assert len(value) == 2
        assert value.attributes == ("a", "b")
        assert dict(value.items()) == {"a": Atom(1), "b": Atom(2)}

    def test_rendering(self):
        assert TupleObject({"name": Atom("peter"), "age": Atom(25)}).to_text() == (
            "[age: 25, name: peter]"
        )


class TestSetObject:
    def test_duplicates_collapse(self):
        assert SetObject([Atom(1), Atom(1)]) == SetObject([Atom(1)])

    def test_order_is_irrelevant(self):
        assert SetObject([Atom(1), Atom(2), Atom(3)]) == SetObject([Atom(3), Atom(2), Atom(1)])

    def test_bottom_elements_dropped(self):
        assert SetObject([Atom(1), BOTTOM]) == SetObject([Atom(1)])
        assert SetObject([BOTTOM]) == SetObject([])

    def test_top_element_collapses(self):
        assert SetObject([Atom(1), TOP]) is TOP

    def test_constructor_reduces(self):
        small = TupleObject({"a": Atom(1)})
        big = TupleObject({"a": Atom(1), "b": Atom(2)})
        assert SetObject([small, big]) == SetObject([big])

    def test_raw_does_not_reduce(self):
        small = TupleObject({"a": Atom(1)})
        big = TupleObject({"a": Atom(1), "b": Atom(2)})
        raw = SetObject.raw([small, big])
        assert len(raw) == 2

    def test_add_and_discard(self):
        value = SetObject([Atom(1)])
        assert Atom(2) in value.add(Atom(2))
        assert Atom(1) not in value.discard(Atom(1))
        # Discarding an absent element is a no-op.
        assert value.discard(Atom(9)) == value

    def test_membership_and_iteration(self):
        value = SetObject([Atom(2), Atom(1)])
        assert Atom(1) in value
        assert [element.value for element in value] == [1, 2]

    def test_rejects_non_object_elements(self):
        with pytest.raises(NormalizationError):
            SetObject([1, 2])

    def test_heterogeneous_elements_allowed(self):
        mixed = SetObject([Atom(1), TupleObject({"a": Atom(2)}), SetObject([Atom(3)])])
        assert len(mixed) == 3

    def test_rendering(self):
        assert SetObject([Atom(2), Atom(1)]).to_text() == "{1, 2}"


class TestCanonicalOrder:
    def test_sort_key_total_order_over_kinds(self):
        values = [TOP, BOTTOM, Atom(1), TupleObject({"a": Atom(1)}), SetObject([Atom(1)])]
        keys = [value.sort_key() for value in values]
        assert len(set(keys)) == len(keys)
        assert sorted(keys) == sorted(keys, key=lambda key: key)

    def test_hash_consistency_with_equality(self):
        left = TupleObject({"a": SetObject([Atom(1), Atom(2)])})
        right = TupleObject({"a": SetObject([Atom(2), Atom(1)])})
        assert left == right
        assert hash(left) == hash(right)

    def test_not_equal_to_plain_python_values(self):
        assert Atom(1) != 1
        assert SetObject([Atom(1)]) != {1}
