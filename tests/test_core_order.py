"""Unit tests for the sub-object relation (Definition 3.1, repro.core.order)."""

import pytest

from repro.core.builder import obj
from repro.core.objects import BOTTOM, TOP, Atom, SetObject, TupleObject
from repro.core.order import (
    compare,
    is_strict_subobject,
    is_subobject,
    maximal_elements,
    minimal_elements,
)


class TestAxioms:
    def test_reflexive_on_samples(self):
        for value in (BOTTOM, TOP, obj(1), obj({"a": 1}), obj([1, [2]])):
            assert is_subobject(value, value)

    def test_bottom_below_everything(self):
        for value in (obj(1), obj({"a": 1}), obj([1]), TOP, BOTTOM):
            assert is_subobject(BOTTOM, value)

    def test_everything_below_top(self):
        for value in (obj(1), obj({"a": 1}), obj([1]), BOTTOM, TOP):
            assert is_subobject(value, TOP)

    def test_nothing_else_below_bottom(self):
        assert not is_subobject(obj(1), BOTTOM)
        assert not is_subobject(obj({}), BOTTOM)
        assert not is_subobject(obj([]), BOTTOM)

    def test_top_only_below_top(self):
        assert not is_subobject(TOP, obj(1))
        assert not is_subobject(TOP, obj([1]))


class TestAtoms:
    def test_equal_atoms_comparable(self):
        assert is_subobject(obj(1), obj(1))

    def test_distinct_atoms_incomparable(self):
        assert not is_subobject(obj(1), obj(2))
        assert not is_subobject(obj(1), obj(1.0))

    def test_atom_not_below_containers(self):
        # The paper: 1 is not a sub-object of [a:1, b:2] nor of {1, 2, 3}.
        assert not is_subobject(obj(1), obj({"a": 1, "b": 2}))
        assert not is_subobject(obj(1), obj([1, 2, 3]))


class TestTuples:
    def test_fewer_attributes_is_smaller(self):
        assert is_subobject(obj({"a": 1}), obj({"a": 1, "b": 2}))
        assert not is_subobject(obj({"a": 1, "b": 2}), obj({"a": 1}))

    def test_attribute_values_compared_recursively(self):
        assert is_subobject(obj({"a": [1], "b": 2}), obj({"a": [1, 2], "b": 2}))
        assert not is_subobject(obj({"a": [3], "b": 2}), obj({"a": [1, 2], "b": 2}))

    def test_conflicting_value_not_subobject(self):
        assert not is_subobject(obj({"a": 1}), obj({"a": 2, "b": 3}))

    def test_empty_tuple_below_every_tuple(self):
        assert is_subobject(obj({}), obj({"a": 1}))

    def test_tuple_not_below_set(self):
        assert not is_subobject(obj({"a": 1}), obj([{"a": 1}]))


class TestSets:
    def test_subset_is_subobject(self):
        assert is_subobject(obj([1, 2, 3]), obj([1, 2, 3, 4]))

    def test_elementwise_domination(self):
        left = obj([{"a": 1}, {"a": 2, "b": 3}])
        right = obj([{"a": 1, "b": 2}, {"a": 2, "b": 3}, {"a": 5, "b": 5, "c": 5}])
        assert is_subobject(left, right)

    def test_not_subobject_when_some_element_uncovered(self):
        assert not is_subobject(obj([1, 5]), obj([1, 2, 3]))

    def test_empty_set_below_every_set(self):
        assert is_subobject(obj([]), obj([1]))
        assert is_subobject(obj([]), obj([]))

    def test_set_not_below_tuple(self):
        assert not is_subobject(obj([1]), obj({"a": 1}))


class TestHelpers:
    def test_strict_subobject(self):
        assert is_strict_subobject(obj({"a": 1}), obj({"a": 1, "b": 2}))
        assert not is_strict_subobject(obj({"a": 1}), obj({"a": 1}))

    def test_compare(self):
        assert compare(obj({"a": 1}), obj({"a": 1, "b": 2})) == -1
        assert compare(obj({"a": 1, "b": 2}), obj({"a": 1})) == 1
        assert compare(obj(1), obj(1)) == 0
        assert compare(obj(1), obj(2)) is None

    def test_maximal_elements(self):
        values = [obj({"a": 1}), obj({"a": 1, "b": 2}), obj(3)]
        result = maximal_elements(values)
        assert obj({"a": 1, "b": 2}) in result
        assert obj(3) in result
        assert obj({"a": 1}) not in result

    def test_minimal_elements(self):
        values = [obj({"a": 1}), obj({"a": 1, "b": 2}), obj(3)]
        result = minimal_elements(values)
        assert obj({"a": 1}) in result
        assert obj(3) in result
        assert obj({"a": 1, "b": 2}) not in result

    def test_maximal_keeps_one_of_equivalent_pair(self):
        # Two distinct but mutually dominating (non-reduced) objects.
        first = SetObject.raw([obj({"a": 3, "b": 5}), obj({"a": 3})])
        second = SetObject.raw([obj({"a": 3, "b": 5})])
        kept = maximal_elements([first, second])
        assert len(kept) == 1

    def test_type_errors(self):
        with pytest.raises(TypeError):
            is_subobject(obj(1), 1)
