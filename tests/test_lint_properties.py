"""Property tests for the analyzer: purity, determinism, no false errors.

Three contracts the analyzer documents:

* linting never mutates its inputs (rules render identically before and
  after a run);
* identical inputs produce identical reports (no timestamps, no ids, no
  iteration-order leaks);
* a program the analyzer passes with zero errors and zero warnings
  evaluates to a fixpoint without raising.
"""

from hypothesis import given, settings, strategies as st

from repro import Program
from repro.calculus.rules import Rule
from repro.calculus.terms import Constant, SetFormula, TupleFormula, var
from repro.core import atom
from repro.lint import lint_query, lint_rules

VARIABLES = ("X", "Y", "Z")
BODY_ATTRIBUTES = ("a_r", "b_r", "c_r")
HEAD_ATTRIBUTES = ("p_out", "q_out")


@st.composite
def elements(draw):
    if draw(st.booleans()):
        return var(draw(st.sampled_from(VARIABLES)))
    return Constant(atom(draw(st.integers(min_value=0, max_value=5))))


@st.composite
def rules(draw):
    """A well-formed rule whose head repeats every body variable.

    Head attributes are drawn from a pool disjoint from the body's, so
    generated programs are acyclic (no recursion, hence no divergence) and
    every variable occurs at least twice (body + head) — the shapes the
    analyzer must pass clean unless a plan-level finding applies.
    """
    attributes = draw(
        st.lists(
            st.sampled_from(BODY_ATTRIBUTES), min_size=1, max_size=2, unique=True
        )
    )
    body_attrs = {}
    for name in attributes:
        members = draw(st.lists(elements(), min_size=1, max_size=2))
        body_attrs[name] = SetFormula(tuple(members))
    body = TupleFormula(body_attrs)
    bound = sorted(body.variables())
    if bound:
        head_members = tuple(var(name) for name in bound)
    else:
        head_members = (Constant(atom(draw(st.integers(0, 3)))),)
    head = TupleFormula(
        {draw(st.sampled_from(HEAD_ATTRIBUTES)): SetFormula(head_members)}
    )
    return Rule(head, body)


programs = st.lists(rules(), min_size=1, max_size=4)


@settings(max_examples=60, deadline=None)
@given(programs)
def test_lint_never_mutates(program):
    before = [rule.to_text() for rule in program]
    lint_rules(program)
    assert [rule.to_text() for rule in program] == before


@settings(max_examples=60, deadline=None)
@given(programs)
def test_lint_is_deterministic(program):
    first = lint_rules(program)
    second = lint_rules(program)
    assert first == second
    assert first.to_json() == second.to_json()


@settings(max_examples=60, deadline=None)
@given(programs)
def test_quiet_programs_evaluate(program):
    report = lint_rules(program)
    if report.errors or report.warnings:
        return
    result = Program(program).evaluate(max_iterations=50)
    assert result.value is not None


@settings(max_examples=60, deadline=None)
@given(programs)
def test_admitted_rules_never_report_containment_errors(program):
    report = lint_rules(program)
    assert "RL001" not in report.by_code()


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(VARIABLES), st.sampled_from(BODY_ATTRIBUTES))
def test_query_lint_is_deterministic(variable, attribute):
    query = TupleFormula({attribute: SetFormula((var(variable),))})
    first = lint_query(query)
    second = lint_query(query)
    assert first == second
