"""Property-based tests for the calculus (Definition 4.2, Lemma 4.1).

Random databases are built as tuples of set-of-flat-tuple relations (the shape
Section 4 of the paper works with); random queries are drawn from a small pool
of formula shapes.  The properties checked are:

* soundness: every enumerated match instantiates to a sub-object of the
  database, and the interpretation itself is a sub-object (Definition 4.2's
  closing remark);
* completeness: the optimized matcher's interpretation equals the brute-force
  oracle's, under both the strict and the literal semantics;
* monotonicity of formula interpretation and of rule application (Lemma 4.1).
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import atoms

from repro.core.lattice import union
from repro.core.objects import SetObject, TupleObject
from repro.core.order import is_subobject
from repro.calculus.interpretation import interpret, interpret_bruteforce
from repro.calculus.matching import match_all
from repro.calculus.rules import Rule
from repro.calculus.terms import Constant, SetFormula, TupleFormula, Variable


def small_relations():
    """A set of at most three flat tuples over attributes a/b."""
    rows = st.dictionaries(st.sampled_from(["a", "b"]), atoms(), max_size=2).map(TupleObject)
    return st.lists(rows, max_size=3).map(SetObject)


def databases():
    """A database object with relations r1 and r2."""
    return st.builds(
        lambda r1, r2: TupleObject({"r1": r1, "r2": r2}), small_relations(), small_relations()
    )


def tiny_relations():
    """At most two rows of at most one attribute — keeps the oracle tractable."""
    rows = st.dictionaries(st.sampled_from(["a", "b"]), atoms(), max_size=1).map(TupleObject)
    return st.lists(rows, max_size=2).map(SetObject)


def tiny_databases():
    """Small databases for the exponential brute-force comparison."""
    return st.builds(
        lambda r1, r2: TupleObject({"r1": r1, "r2": r2}), tiny_relations(), tiny_relations()
    )


def queries():
    """A pool of query shapes covering selection, projection, join, intersection."""
    x, y = Variable("X"), Variable("Y")
    return st.sampled_from(
        [
            TupleFormula({"r1": SetFormula([x])}),
            TupleFormula({"r1": SetFormula([TupleFormula({"a": x})])}),
            TupleFormula({"r1": SetFormula([TupleFormula({"a": x, "b": y})])}),
            TupleFormula(
                {
                    "r1": SetFormula([TupleFormula({"a": x})]),
                    "r2": SetFormula([TupleFormula({"b": x})]),
                }
            ),
            TupleFormula({"r1": SetFormula([x]), "r2": SetFormula([x])}),
            TupleFormula({"r1": x, "r2": y}),
        ]
    )


class TestSoundness:
    @given(queries(), databases())
    def test_matches_instantiate_to_subobjects(self, query, database):
        for sigma in match_all(query, database):
            assert is_subobject(sigma.apply(query), database)

    @given(queries(), databases())
    def test_interpretation_is_a_subobject(self, query, database):
        assert is_subobject(interpret(query, database), database)


class TestCompleteness:
    @settings(max_examples=25)
    @given(queries(), tiny_databases())
    def test_matcher_equals_bruteforce_strict(self, query, database):
        assert interpret(query, database) == interpret_bruteforce(query, database)

    @settings(max_examples=25)
    @given(queries(), tiny_databases())
    def test_matcher_equals_bruteforce_literal(self, query, database):
        assert interpret(query, database, allow_bottom=True) == interpret_bruteforce(
            query, database, allow_bottom=True
        )


class TestMonotonicity:
    @given(queries(), databases(), databases())
    def test_interpretation_is_monotone(self, query, smaller, larger):
        # Make the pair comparable by joining; O ≤ O ∪ O'.
        combined = union(smaller, larger)
        if combined.is_top:
            return
        assert is_subobject(interpret(query, smaller), interpret(query, combined))

    @given(databases(), databases())
    def test_lemma_41_rule_application_is_monotone(self, smaller, larger):
        combined = union(smaller, larger)
        if combined.is_top:
            return
        rule = Rule(
            TupleFormula({"out": SetFormula([Variable("X")])}),
            TupleFormula({"r1": SetFormula([Variable("X")])}),
        )
        assert is_subobject(rule.apply(smaller), rule.apply(combined))

    @given(databases())
    def test_interpretation_is_idempotent_on_its_result(self, database):
        # E(O) is a sub-object of O built only from matched parts, so
        # re-interpreting the same formula over E(O) gives E(O) again.
        query = TupleFormula({"r1": SetFormula([Variable("X")])})
        first = interpret(query, database)
        assert interpret(query, first) == first
