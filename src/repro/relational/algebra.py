"""The classical (1NF) relational algebra.

Implemented operators: selection, projection, renaming, cartesian product,
natural join, equi-join, union, difference and intersection — everything the
paper's Examples 4.1 and 4.2 gloss in relational terms, so integration tests
and benchmarks can compare a calculus query against its relational plan on the
same data (after conversion through :mod:`repro.relational.bridge`).

All operators are pure functions returning new :class:`Relation` instances.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.relational.relation import Relation, Row

__all__ = [
    "select",
    "project",
    "rename",
    "product",
    "natural_join",
    "equijoin",
    "union",
    "difference",
    "intersect",
]


def select(
    relation: Relation,
    predicate: Optional[Callable[[Row], bool]] = None,
    **equals,
) -> Relation:
    """Selection σ.

    Either pass a row predicate or keyword equality constraints:
    ``select(r1, b="b")`` is the paper's Example 4.1(1) selection on ``B = b``.
    """
    if predicate is None and not equals:
        return relation

    def keep(row: Row) -> bool:
        if predicate is not None and not predicate(row):
            return False
        return all(row.get(name) == value for name, value in equals.items())

    return Relation(relation.attributes, (row for row in relation.rows if keep(row)),
                    name=relation.name)


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Projection π onto ``attributes`` (duplicates collapse, as sets do)."""
    names = tuple(attributes)
    missing = set(names) - set(relation.attributes)
    if missing:
        unknown = ", ".join(sorted(missing))
        raise ValueError(f"cannot project on unknown attributes: {unknown}")
    return Relation(names, (row.project(names) for row in relation.rows), name=relation.name)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Renaming ρ: rename attributes according to ``mapping``."""
    unknown = set(mapping) - set(relation.attributes)
    if unknown:
        names = ", ".join(sorted(unknown))
        raise ValueError(f"cannot rename unknown attributes: {names}")
    new_attrs = tuple(mapping.get(name, name) for name in relation.attributes)
    return Relation(new_attrs, (row.rename(mapping) for row in relation.rows),
                    name=relation.name)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product ×; attribute sets must be disjoint."""
    overlap = set(left.attributes) & set(right.attributes)
    if overlap:
        shared = ", ".join(sorted(overlap))
        raise ValueError(f"cartesian product requires disjoint schemas; shared: {shared}")
    attributes = tuple(left.attributes) + tuple(right.attributes)
    rows = []
    for first in left.rows:
        for second in right.rows:
            combined = first.as_dict()
            combined.update(second.as_dict())
            rows.append(combined)
    return Relation(attributes, rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join ⋈ on the shared attributes (product when none are shared)."""
    shared = [name for name in left.attributes if name in set(right.attributes)]
    attributes = tuple(left.attributes) + tuple(
        name for name in right.attributes if name not in shared
    )
    rows = []
    # Hash join on the shared attributes: index the smaller side.
    build, probe, build_is_left = (left, right, True)
    if len(right) < len(left):
        build, probe, build_is_left = (right, left, False)
    index = {}
    for row in build.rows:
        key = tuple(row.get(name) for name in shared)
        index.setdefault(key, []).append(row)
    for row in probe.rows:
        key = tuple(row.get(name) for name in shared)
        for partner in index.get(key, ()):
            first, second = (partner, row) if build_is_left else (row, partner)
            merged = first.merge(second)
            if merged is not None:
                rows.append(merged.project(attributes))
    return Relation(attributes, rows)


def equijoin(
    left: Relation,
    right: Relation,
    pairs: Sequence,
) -> Relation:
    """Equi-join on explicit attribute pairs ``[(left_attr, right_attr), ...]``.

    The paper's Example 4.2(3) ("join of R1 and R2 with join attributes
    B = C") is ``equijoin(r1, r2, [("b", "c")])``.  Attributes shared by name
    between the two operands are not implicitly equated; overlapping names are
    rejected to avoid ambiguity.
    """
    overlap = set(left.attributes) & set(right.attributes)
    if overlap:
        shared = ", ".join(sorted(overlap))
        raise ValueError(
            f"equijoin operands must have disjoint schemas (rename first); shared: {shared}"
        )
    left_keys = [pair[0] for pair in pairs]
    right_keys = [pair[1] for pair in pairs]
    attributes = tuple(left.attributes) + tuple(right.attributes)
    index = {}
    for row in right.rows:
        key = tuple(row.get(name) for name in right_keys)
        index.setdefault(key, []).append(row)
    rows = []
    for row in left.rows:
        key = tuple(row.get(name) for name in left_keys)
        if any(part is None for part in key):
            # Null never joins, matching SQL and matching the calculus where a
            # missing attribute reads as ⊥ and cannot equal an atom.
            continue
        for partner in index.get(key, ()):
            combined = row.as_dict()
            combined.update(partner.as_dict())
            rows.append(combined)
    return Relation(attributes, rows)


def _require_same_schema(left: Relation, right: Relation, operation: str) -> None:
    if set(left.attributes) != set(right.attributes):
        raise ValueError(
            f"{operation} requires identical schemas: {left.attributes} vs {right.attributes}"
        )


def union(left: Relation, right: Relation) -> Relation:
    """Set union ∪ of two union-compatible relations."""
    _require_same_schema(left, right, "union")
    return Relation(left.attributes, list(left.rows) + [row.project(left.attributes)
                                                        for row in right.rows])


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference −."""
    _require_same_schema(left, right, "difference")
    right_rows = {row.project(left.attributes) for row in right.rows}
    return Relation(left.attributes, (row for row in left.rows if row not in right_rows))


def intersect(left: Relation, right: Relation) -> Relation:
    """Set intersection ∩ (the paper's Example 4.2(5) baseline)."""
    _require_same_schema(left, right, "intersection")
    right_rows = {row.project(left.attributes) for row in right.rows}
    return Relation(left.attributes, (row for row in left.rows if row in right_rows))
