"""Storage engines: where named objects physically live.

Two engines implement the same interface (:class:`StorageEngine`):

* :class:`MemoryStorage` — a plain dictionary; the default for tests,
  examples and benchmarks;
* :class:`FileStorage` — a **write-ahead log**: every commit is appended as a
  single checksummed record (see :func:`repro.store.codec.frame_record`) and
  fsynced once, whether it carries one write or a whole transaction's batch.
  On open, the log is replayed to rebuild the current state; an unterminated
  final line is a *torn tail* left by a crash mid-append and is truncated
  away, while a complete record that fails to parse or fails its checksum is
  reported as corruption.  ``compact()`` rewrites the log with just the live
  versions.

The unit of atomicity is :meth:`StorageEngine.apply_batch`: a mapping from
names to new values (``None`` meaning delete) that is applied all-or-nothing.
``write``/``delete`` are single-change conveniences over it.  Everything
smarter (indexes, transactions, schema checks, locking, queries) lives above
the engines in :class:`repro.store.database.ObjectDatabase`.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.errors import StoreError
from repro.core.objects import ComplexObject
from repro.fault import injection as _fault
from repro.fault.injection import InjectedFault, SimulatedCrash
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY as _METRICS
from repro.store.codec import decode_json, encode_json, frame_record, parse_record

__all__ = ["StorageEngine", "MemoryStorage", "FileStorage", "decode_record_changes"]


class StorageEngine:
    """Interface of a storage engine: a named map of complex objects."""

    def read(self, name: str) -> Optional[ComplexObject]:
        """Return the object stored under ``name``, or ``None`` when absent."""
        raise NotImplementedError

    def write(self, name: str, value: ComplexObject) -> None:
        """Store ``value`` under ``name``, replacing any previous version."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove ``name`` (no error when absent)."""
        raise NotImplementedError

    def apply_batch(self, changes: Mapping[str, Optional[ComplexObject]]) -> None:
        """Apply a group of changes atomically and (if durable) in one fsync.

        ``changes`` maps names to their new values; ``None`` deletes the
        name.  Either every change lands or none does — engines must validate
        and encode the whole batch before mutating any state.

        The default applies the batch change-by-change through ``write`` /
        ``delete`` so engines written against the original interface keep
        working — but that fallback is only atomic when the individual
        operations cannot fail part-way (it validates the whole batch up
        front to make that true for well-typed values).  Engines with a real
        commit point (like :class:`FileStorage`) must override it.
        """
        _check_batch(changes)
        for name, value in changes.items():
            if value is None:
                self.delete(name)
            else:
                self.write(name, value)

    def names(self) -> Tuple[str, ...]:
        """The names currently stored, sorted."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[str, ComplexObject]]:
        """Iterate over ``(name, object)`` pairs in name order."""
        for name in self.names():
            value = self.read(name)
            if value is not None:
                yield name, value

    def close(self) -> None:
        """Release any resources (files); the default does nothing."""


def _check_batch(changes: Mapping[str, Optional[ComplexObject]]) -> None:
    for name, value in changes.items():
        if not isinstance(name, str):
            raise StoreError(f"object names must be strings, got {type(name).__name__}")
        if value is not None and not isinstance(value, ComplexObject):
            raise StoreError(
                f"only complex objects can be stored, got {type(value).__name__}"
            )


class MemoryStorage(StorageEngine):
    """An in-memory storage engine backed by a dictionary."""

    def __init__(self):
        self._objects: Dict[str, ComplexObject] = {}

    def read(self, name: str) -> Optional[ComplexObject]:
        return self._objects.get(name)

    def write(self, name: str, value: ComplexObject) -> None:
        self.apply_batch({name: value})

    def delete(self, name: str) -> None:
        self.apply_batch({name: None})

    def apply_batch(self, changes: Mapping[str, Optional[ComplexObject]]) -> None:
        _check_batch(changes)
        # Validation above is the only thing that can raise; the loop below
        # cannot fail part-way, so the batch is all-or-nothing.
        for name, value in changes.items():
            if value is None:
                self._objects.pop(name, None)
            else:
                self._objects[name] = value

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._objects))


def decode_record_changes(record: dict, line_number: int) -> Dict[str, Optional[ComplexObject]]:
    """Decode one replayed WAL record into a ``name → object-or-None`` map.

    Raises :class:`StoreError` for any shape problem **before** anything is
    applied, so a malformed record can never be half-replayed.  Shared by
    :class:`FileStorage` recovery and the offline verifier
    (:mod:`repro.store.verify`).
    """
    operation = record.get("op")
    if operation == "commit":
        writes = record.get("writes")
        if not isinstance(writes, dict):
            raise StoreError(
                f"corrupt commit record (missing writes) at line {line_number}"
            )
        changes: Dict[str, Optional[ComplexObject]] = {}
        for name, data in writes.items():
            changes[name] = None if data is None else decode_json(data)
        return changes
    # Legacy per-change records from the pre-WAL format.
    name = record.get("name")
    if not isinstance(name, str):
        raise StoreError(f"corrupt record (missing name) at line {line_number}")
    if operation == "write":
        return {name: decode_json(record.get("data"))}
    if operation == "delete":
        return {name: None}
    raise StoreError(
        f"corrupt record (unknown op {operation!r}) at line {line_number}"
    )


class FileStorage(StorageEngine):
    """A write-ahead-log storage engine over one append-only file.

    Each committed batch is one line: ``{"op": "commit", "writes": {name:
    encoded-object-or-null, ...}, "crc": ...}`` (``null`` deletes the name).
    The legacy per-change records ``{"op": "write"|"delete", ...}`` written
    by earlier versions are still replayed, so old logs open unchanged.

    Recovery discipline on open:

    * a final line with no terminating newline is a **torn tail** — the crash
      happened mid-append, the commit never completed, and the tail is
      truncated off so the next append starts at a record boundary;
    * a newline-terminated record that fails to parse, fails its checksum, or
      has an unknown shape is **corruption**.  The default
      (``on_corruption="quarantine"``) moves the corrupt record *and
      everything after it* — replaying past a gap would break prefix
      consistency — verbatim into the ``<path>.quarantine`` sidecar,
      truncates the log back to the last intact record, and reports the
      damage on :attr:`quarantined_records` / :attr:`quarantined_bytes` (and
      the ``store.wal.quarantined_*`` metrics), so the store opens with the
      longest intact prefix and no committed byte is silently discarded.
      ``on_corruption="raise"`` keeps the strict historical behaviour:
      :class:`StoreError` on open, nothing touched.

    Failed appends self-heal: if the append or its fsync raises (a real
    ``OSError`` or an injected fault), the log is truncated back to the
    record boundary before the attempt so a partial line can never corrupt
    the commits that follow; only when that healing itself fails does the
    engine mark itself failed and reject further writes.
    """

    def __init__(self, path: str, *, on_corruption: str = "quarantine"):
        if on_corruption not in ("quarantine", "raise"):
            raise StoreError(
                f"unknown on_corruption mode {on_corruption!r}"
                " (expected 'quarantine' or 'raise')"
            )
        self.path = path
        self.quarantine_path = path + ".quarantine"
        self._on_corruption = on_corruption
        self._objects: Dict[str, ComplexObject] = {}
        self.torn_bytes_dropped = 0
        self.quarantined_records = 0
        self.quarantined_bytes = 0
        self._failed = False
        if _fault.ACTIVE is not None:
            _fault.fire("store.wal.open")
        self._replay()
        # Open for appending only after a successful replay so a corrupt log
        # is reported before any new data is appended to it.
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = os.path.getsize(self.path)

    # -- log handling ------------------------------------------------------------
    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        replayed = 0
        with _trace.span("store.wal.recovery") as span:
            with open(self.path, "rb") as handle:
                raw = handle.read()
            if raw and not raw.endswith(b"\n"):
                boundary = raw.rfind(b"\n") + 1
                self.torn_bytes_dropped = len(raw) - boundary
                raw = raw[:boundary]
                with open(self.path, "r+b") as handle:
                    handle.truncate(boundary)
                    handle.flush()
                    os.fsync(handle.fileno())
            offset = 0
            # ``raw`` is empty or newline-terminated here, so the final split
            # element is always the empty tail.
            for line_number, raw_line in enumerate(raw.split(b"\n")[:-1], start=1):
                if raw_line.strip():
                    try:
                        record = parse_record(
                            raw_line.decode("utf-8"), require_commit_checksum=True
                        )
                        changes = decode_record_changes(record, line_number)
                    except UnicodeDecodeError as error:
                        self._corrupt(
                            raw, offset, line_number, f"not valid UTF-8 ({error})"
                        )
                        break
                    except StoreError as error:
                        self._corrupt(raw, offset, line_number, str(error))
                        break
                    for name, value in changes.items():
                        if value is None:
                            self._objects.pop(name, None)
                        else:
                            self._objects[name] = value
                    replayed += 1
                offset += len(raw_line) + 1
            if span.enabled:
                span.set(
                    path=self.path,
                    records=replayed,
                    torn_bytes=self.torn_bytes_dropped,
                    quarantined_records=self.quarantined_records,
                )
        _METRICS.counter("store.wal.recoveries").inc()
        _METRICS.counter("store.wal.records_replayed").inc(replayed)
        _METRICS.counter("store.wal.torn_bytes_dropped").inc(self.torn_bytes_dropped)

    def _corrupt(self, raw: bytes, offset: int, line_number: int, reason: str) -> None:
        """Handle a corrupt record at ``offset``: quarantine or raise."""
        message = f"corrupt storage log {self.path!r} at line {line_number}: {reason}"
        if self._on_corruption == "raise":
            raise StoreError(message)
        blob = raw[offset:]
        records = sum(1 for chunk in blob.split(b"\n") if chunk.strip())
        with open(self.quarantine_path, "ab") as sidecar:
            sidecar.write(blob)
            sidecar.flush()
            os.fsync(sidecar.fileno())
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        self.quarantined_records = records
        self.quarantined_bytes = len(blob)
        _METRICS.counter("store.wal.quarantined_records").inc(records)
        _METRICS.counter("store.wal.quarantined_bytes").inc(len(blob))

    def _append(self, line: str) -> None:
        if self._failed:
            raise StoreError(
                f"storage {self.path!r} is failed: an earlier append error"
                " could not be healed; reopen the store to recover"
            )
        start_ns = time.perf_counter_ns()
        base = self._size
        with _trace.span("store.wal.append") as span:
            if span.enabled:
                span.set(bytes=len(line))
            try:
                torn = None
                if _fault.ACTIVE is not None:
                    torn = _fault.fire("store.wal.append", size=len(line))
                if torn is not None:
                    # A torn-write directive: persist only a prefix, then
                    # fail (healed below) or crash (left torn on disk for
                    # recovery to truncate, exactly like a real power cut).
                    prefix = line[: torn.prefix]
                    self._handle.write(prefix)
                    self._handle.flush()
                    self._size = base + len(prefix)
                    if torn.crash:
                        raise SimulatedCrash(
                            f"simulated crash mid-append to {self.path!r}"
                        )
                    raise InjectedFault(
                        f"injected partial append to {self.path!r}"
                    )
                self._handle.write(line)
                self._handle.flush()
                self._size = base + len(line)
                with _trace.span("store.wal.fsync"):
                    if _fault.ACTIVE is not None:
                        _fault.fire("store.wal.fsync")
                    os.fsync(self._handle.fileno())
            except SimulatedCrash:
                # The simulated process death: leave the bytes exactly where
                # they landed (recovery handles the torn state) and poison
                # this instance — a dead process appends nothing further.
                self._failed = True
                raise
            except InjectedFault:
                self._heal(base)
                raise
            except OSError as error:
                self._heal(base)
                raise StoreError(
                    f"write-ahead log append to {self.path!r} failed: {error}"
                ) from error
        _METRICS.counter("store.wal.appends").inc()
        _METRICS.counter("store.wal.bytes").inc(len(line))
        _METRICS.counter("store.wal.fsyncs").inc()
        _METRICS.histogram("store.wal.append_ns").observe(
            time.perf_counter_ns() - start_ns
        )

    def _heal(self, offset: int) -> None:
        """Truncate a failed append back to the last good record boundary.

        Best-effort: when the healing itself fails the engine marks itself
        failed and rejects further appends (the on-disk prefix up to
        ``offset`` stays valid either way — recovery re-truncates a torn
        tail on the next open).
        """
        _METRICS.counter("store.wal.healed_appends").inc()
        try:
            self._handle.flush()
        except OSError:
            # Unknown bytes may still sit in the text-wrapper buffer; they
            # could leak into a later write, so stop accepting appends.
            self._failed = True
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
            self._size = offset
        except OSError:
            self._failed = True

    # -- StorageEngine interface ----------------------------------------------------
    def read(self, name: str) -> Optional[ComplexObject]:
        return self._objects.get(name)

    def write(self, name: str, value: ComplexObject) -> None:
        self.apply_batch({name: value})

    def apply_batch(self, changes: Mapping[str, Optional[ComplexObject]]) -> None:
        _check_batch(changes)
        if not changes:
            return
        # Encode and frame the whole commit before touching the log or the
        # in-memory state: an encoding failure leaves both untouched, and the
        # single append + fsync makes the batch one durability point.
        writes = {
            name: None if value is None else encode_json(value)
            for name, value in changes.items()
        }
        self._append(frame_record({"op": "commit", "writes": writes}))
        for name, value in changes.items():
            if value is None:
                self._objects.pop(name, None)
            else:
                self._objects[name] = value

    def delete(self, name: str) -> None:
        # Skip the log append when the name is absent; nothing to undo.
        if name in self._objects:
            self.apply_batch({name: None})

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._objects))

    def compact(self) -> None:
        """Rewrite the log keeping only the latest version of each object."""
        temporary = self.path + ".compact"
        with open(temporary, "w", encoding="utf-8") as handle:
            for name in sorted(self._objects):
                record = {
                    "op": "commit",
                    "writes": {name: encode_json(self._objects[name])},
                }
                handle.write(frame_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(temporary, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = os.path.getsize(self.path)
        # A full rewrite from the in-memory state recovers a failed engine.
        self._failed = False

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
