"""Property-based equivalence of the vectorized executor with its oracles.

The batch-at-a-time executor's contract is exact behavioural identity with
the binding-at-a-time reference implementation it replaced — not just the
same substitution *set* but the same *list*, because cursor streaming, LIMIT
semantics and the engine's round bookkeeping all observe enumeration order:

* ``match_plan(executor="vector")`` ≡ ``match_plan(executor="scalar")`` ≡
  the calculus oracle ``match_all``, on random bodies × random targets
  (⊤ witnesses included — they exercise the short-circuit layout paths),
  under both semantics and both leaf orders (source and cost-based);
* ``iter_match_plan`` streams the identical list for every batch size,
  including the degenerate ``batch_size=1`` schedule;
* index pushdown (the batch probe cache) changes nothing about the answer.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import parse_formula, parse_object  # noqa: E402
from repro.calculus.matching import match_all  # noqa: E402
from repro.core.objects import BOTTOM, TOP, Atom, SetObject, TupleObject  # noqa: E402
from repro.engine.indexes import IndexStore  # noqa: E402
from repro.engine.stats import EngineStats  # noqa: E402
from repro.plan import (  # noqa: E402
    DatabaseStatistics,
    compile_body,
    match_plan,
    optimize_body,
)
from repro.plan.execute import iter_match_plan  # noqa: E402

_ATTRIBUTE_NAMES = ("a", "b", "c", "d", "r1", "r2", "name")

#: Body shapes chosen to hit every executor path: flat compiled tuples,
#: repeated variables (the intersection merge), nested set formulae (the
#: interpreted fallback), spine variables, multi-element scans, and the
#: vanish alternative (⊥ inside a set formula).
BODY_SHAPES = [
    "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
    "[r1: {[name: X]}]",
    "[r1: {X}, r2: {X}]",
    "[r1: {[a: X], [b: Y]}]",
    "[r1: {[a: X, b: X]}]",
    "X",
    "[r1: X, r2: {[c: Y]}]",
    "[r1: {[a: {[name: X]}, b: Y]}]",
    "[r1: {bottom, X}]",
    "[r1: {[a: X, b: Y], [a: Y, b: X]}]",
]

BATCH_SIZES = (1, 2, 3, 64)


def _atoms():
    return st.one_of(
        st.integers(min_value=-20, max_value=20).map(Atom),
        st.sampled_from(["john", "mary", "x", "y"]).map(Atom),
        st.just(TOP),
    )


def complex_objects(max_depth: int = 3):
    """Bounded random objects, ⊤ included at every level."""
    if max_depth <= 1:
        return _atoms()
    children = complex_objects(max_depth - 1)
    tuples = st.dictionaries(
        st.sampled_from(_ATTRIBUTE_NAMES), children, max_size=3
    ).map(TupleObject)
    sets = st.lists(children, max_size=3).map(SetObject)
    return st.one_of(_atoms(), tuples, sets)


def _plan(body, database, optimized):
    plan = compile_body(body)
    if optimized:
        plan = optimize_body(plan, DatabaseStatistics.collect(database))
    return plan


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from(BODY_SHAPES),
    complex_objects(max_depth=3),
    st.booleans(),
    st.booleans(),
)
def test_vector_equals_scalar_equals_match_all(body_text, database, allow, optimized):
    body = parse_formula(body_text)
    plan = _plan(body, database, optimized)
    scalar = match_plan(plan, database, allow_bottom=allow, executor="scalar")
    vector = match_plan(plan, database, allow_bottom=allow, executor="vector")
    # Same list, not just same set: enumeration order is part of the contract.
    assert vector == scalar
    assert set(vector) == set(match_all(body, database, allow_bottom=allow))


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(BODY_SHAPES),
    complex_objects(max_depth=3),
    st.booleans(),
    st.sampled_from(BATCH_SIZES),
)
def test_streaming_agrees_for_every_batch_size(body_text, database, allow, batch_size):
    body = parse_formula(body_text)
    plan = _plan(body, database, optimized=True)
    materialised = match_plan(plan, database, allow_bottom=allow)
    streamed = list(
        iter_match_plan(
            plan, database, allow_bottom=allow, batch_size=batch_size
        )
    )
    assert streamed == materialised
    scalar_stream = list(
        iter_match_plan(plan, database, allow_bottom=allow, executor="scalar")
    )
    assert streamed == scalar_stream


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=8,
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_index_pushdown_agrees_between_executors(left, right):
    """The batch probe cache answers exactly what per-partial probing did."""
    body = parse_formula("[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]")
    database = parse_object(
        "["
        + "r1: {"
        + ", ".join(f"[a: n{a}, b: m{b}]" for a, b in left)
        + "}, r2: {"
        + ", ".join(f"[c: m{c}, d: t{d}]" for c, d in right)
        + "}]"
    )
    indexes = IndexStore(EngineStats())
    indexes.register_body(body)
    indexes.refresh(BOTTOM, database)
    plan = _plan(body, database, optimized=True)
    with_index_scalar = match_plan(
        plan, database, indexes=indexes, executor="scalar"
    )
    with_index_vector = match_plan(
        plan, database, indexes=indexes, executor="vector"
    )
    without_index = match_plan(plan, database)
    assert with_index_vector == with_index_scalar
    assert set(with_index_vector) == set(without_index)
    assert set(with_index_vector) == set(match_all(body, database))
