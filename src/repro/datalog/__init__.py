"""A classical Datalog (Horn-clause) engine.

The paper positions its calculus as "an extension of Horn clauses to the case
of complex objects"; Example 4.5 (the descendants of Abraham) is the classic
Datalog transitive-closure program.  This package implements the flat
baseline that comparison needs:

* :mod:`repro.datalog.terms` — constants, variables and predicate atoms;
* :mod:`repro.datalog.rules` — Horn clauses and programs;
* :mod:`repro.datalog.engine` — naive and semi-naive bottom-up evaluation.

The engine is deliberately independent of the complex-object machinery so the
benchmark comparison (calculus closure vs Datalog evaluation) measures two
genuinely different implementations of the same query.
"""

from repro.datalog.engine import DatalogEngine, evaluate, evaluate_naive
from repro.datalog.rules import Clause, DatalogProgram
from repro.datalog.terms import Constant, PredicateAtom, Term, Variable, atom, constant, variable

__all__ = [
    "Clause",
    "Constant",
    "DatalogEngine",
    "DatalogProgram",
    "PredicateAtom",
    "Term",
    "Variable",
    "atom",
    "constant",
    "evaluate",
    "evaluate_naive",
    "variable",
]
