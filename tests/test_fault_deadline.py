"""Cooperative deadlines: Deadline, QueryTimeout, and timeout_ms wiring."""

import pytest

import repro
from repro.core.errors import ComplexObjectError, QueryTimeout
from repro.fault.deadline import Deadline


#: A rule whose closure grows a list forever — deterministic divergence.
DIVERGING_RULE = "[list: {[head: 1, tail: X]}] :- [list: {X}]."


class TestDeadline:
    def test_fresh_deadline_is_not_expired(self):
        deadline = Deadline.start(60_000)
        assert not deadline.expired
        assert deadline.remaining_ms() > 0
        deadline.check("anywhere")  # does not raise

    def test_expired_deadline_raises_with_context(self):
        deadline = Deadline(-1)  # already past
        assert deadline.expired
        with pytest.raises(QueryTimeout) as info:
            deadline.check("unit test", partial_explain="the partial plan")
        error = info.value
        assert "unit test" in str(error)
        assert error.timeout_ms == -1
        assert error.elapsed_ms >= 0
        assert error.partial_explain == "the partial plan"

    def test_partial_explain_thunk_only_runs_on_timeout(self):
        calls = []

        def thunk():
            calls.append(1)
            return "rendered"

        Deadline.start(60_000).check("x", partial_explain=thunk)
        assert calls == []
        with pytest.raises(QueryTimeout) as info:
            Deadline(-1).check("x", partial_explain=thunk)
        assert calls == [1]
        assert info.value.partial_explain == "rendered"

    def test_partial_value_is_attached(self):
        with pytest.raises(QueryTimeout) as info:
            Deadline(-1).check("fixpoint", partial=repro.obj(5))
        assert info.value.partial == repro.obj(5)

    def test_timeout_metric_increments(self):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.counter("session.query_timeouts").value
        with pytest.raises(QueryTimeout):
            Deadline(-1).check()
        assert REGISTRY.counter("session.query_timeouts").value == before + 1


class TestQueryTimeoutType:
    def test_is_both_repro_error_and_timeout_error(self):
        assert issubclass(QueryTimeout, ComplexObjectError)
        assert issubclass(QueryTimeout, TimeoutError)

    def test_exported_at_top_level(self):
        assert repro.QueryTimeout is QueryTimeout


class TestExecuteTimeout:
    def test_fast_query_completes_within_generous_timeout(self):
        with repro.connect() as session:
            session.put("r1", repro.parse_object("{[name: peter, age: 25]}"))
            rows = session.execute(
                "[r1: {[name: X]}]", timeout_ms=60_000
            ).all()
            assert rows  # the budget was generous; the answer is complete

    def test_diverging_closure_times_out_with_partial(self):
        with repro.connect() as session:
            session.put("list", repro.parse_object("{[head: 0]}"))
            session.register(DIVERGING_RULE)
            with pytest.raises(QueryTimeout) as info:
                session.execute(
                    "[list: X]", on_closure=True, timeout_ms=1
                ).all()
            error = info.value
            assert error.timeout_ms == 1
            assert error.elapsed_ms >= 1
            # The engine attached its in-flight closure: diagnosable, not dead.
            assert error.partial is not None

    def test_timed_out_closure_is_not_cached(self):
        with repro.connect() as session:
            session.put("list", repro.parse_object("{[head: 0]}"))
            session.register(DIVERGING_RULE)
            with pytest.raises(QueryTimeout):
                session.execute("[list: X]", on_closure=True, timeout_ms=1).all()
            # A second attempt re-evaluates (and re-times-out) rather than
            # serving a half-computed closure from the cache.
            with pytest.raises(QueryTimeout):
                session.execute("[list: X]", on_closure=True, timeout_ms=1).all()

    def test_streaming_cursor_honors_the_deadline(self):
        with repro.connect() as session:
            session.put("list", repro.parse_object("{[head: 0]}"))
            session.register(DIVERGING_RULE)
            with pytest.raises(QueryTimeout):
                for _ in session.execute("[list: X]", on_closure=True, timeout_ms=1):
                    pass  # pragma: no cover - the closure times out first

    def test_invalid_timeout_rejected(self):
        with repro.connect() as session:
            session.put("r1", repro.parse_object("{[name: peter]}"))
            with pytest.raises(repro.ReproError):
                session.execute("[r1: X]", timeout_ms=0)
            with pytest.raises(repro.ReproError):
                session.execute("[r1: X]", timeout_ms="soon")

    def test_timeout_is_not_part_of_the_guard_surface(self):
        # timeout_ms must not leak into closure guards (it is an option of
        # the execution, not of the fixpoint).
        with repro.connect() as session:
            session.put("r1", repro.parse_object("{[name: peter]}"))
            rows = session.execute(
                "[r1: {[name: X]}]", on_closure=True, timeout_ms=60_000
            ).all()
            assert rows


class TestExecutorDeadline:
    def test_match_plan_deadline_attaches_plan_rendering(self):
        from repro.plan import compile_body, match_plan
        from repro.parser import parse_formula, parse_object

        database = parse_object("[r1: {[a: 1], [a: 2], [a: 3]}]")
        plan = compile_body(parse_formula("[r1: {[a: X]}]"))
        with pytest.raises(QueryTimeout) as info:
            match_plan(plan, database, deadline=Deadline(-1))
        explain = info.value.partial_explain
        assert explain is not None
        assert "timed out" in explain
        assert "progress:" in explain

    def test_match_plan_without_deadline_is_unaffected(self):
        from repro.plan import compile_body, match_plan
        from repro.parser import parse_formula, parse_object

        database = parse_object("[r1: {[a: 1], [a: 2]}]")
        plan = compile_body(parse_formula("[r1: {[a: X]}]"))
        result = match_plan(plan, database)
        assert len(result) == 2
