"""Bottom-up evaluation of Datalog programs: naive and semi-naive.

Both strategies compute the same least fixpoint (the minimal model of a
positive program); they differ in how much work each iteration repeats:

* **naive** evaluation re-derives every fact from the full database on every
  round until nothing new appears — the direct analogue of the paper's
  Theorem 4.1 series;
* **semi-naive** evaluation only joins against the *delta* (facts newly
  derived in the previous round), the standard optimisation that the
  closure-vs-Datalog benchmark uses as its strongest baseline.

Facts are stored per predicate as sets of constant tuples, with simple
first-argument hash indexes built on demand for the join loops.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datalog.rules import Clause, DatalogProgram
from repro.datalog.terms import Constant, PredicateAtom, Variable

__all__ = ["DatalogEngine", "evaluate", "evaluate_naive"]

FactStore = Dict[str, Set[Tuple]]
"""Facts grouped by predicate name; each fact is a tuple of constant values."""


class DatalogEngine:
    """Evaluator for a :class:`DatalogProgram`."""

    def __init__(self, program: DatalogProgram):
        self.program = program

    # -- public API -----------------------------------------------------------------
    def evaluate(self, semi_naive: bool = True, max_iterations: int = 10_000) -> FactStore:
        """Compute the minimal model and return the full fact store."""
        facts = self._initial_facts()
        rules = self.program.rules
        if not rules:
            return facts
        if semi_naive:
            self._run_semi_naive(facts, rules, max_iterations)
        else:
            self._run_naive(facts, rules, max_iterations)
        return facts

    def query(self, predicate: str, semi_naive: bool = True) -> FrozenSet[Tuple]:
        """Evaluate the program and return the facts of one predicate."""
        return frozenset(self.evaluate(semi_naive=semi_naive).get(predicate, set()))

    # -- evaluation strategies --------------------------------------------------------
    def _initial_facts(self) -> FactStore:
        facts: FactStore = {}
        for clause in self.program.facts:
            if not clause.head.is_ground:
                raise ValueError(f"facts must be ground: {clause!r}")
            values = tuple(term.value for term in clause.head.terms)
            facts.setdefault(clause.head.predicate, set()).add(values)
        return facts

    def _run_naive(self, facts: FactStore, rules: List[Clause], max_iterations: int) -> None:
        for _ in range(max_iterations):
            new_facts = []
            for rule in rules:
                for derived in self._apply_rule(rule, facts, delta=None):
                    predicate, values = derived
                    if values not in facts.get(predicate, set()):
                        new_facts.append(derived)
            if not new_facts:
                return
            for predicate, values in new_facts:
                facts.setdefault(predicate, set()).add(values)
        raise RuntimeError(f"naive evaluation did not converge in {max_iterations} iterations")

    def _run_semi_naive(self, facts: FactStore, rules: List[Clause], max_iterations: int) -> None:
        # The first round must consider every fact; afterwards only the delta.
        delta: FactStore = {name: set(values) for name, values in facts.items()}
        for _ in range(max_iterations):
            fresh: FactStore = {}
            for rule in rules:
                for predicate, values in self._apply_rule(rule, facts, delta=delta):
                    if values not in facts.get(predicate, set()):
                        fresh.setdefault(predicate, set()).add(values)
            if not any(fresh.values()):
                return
            for predicate, values in fresh.items():
                facts.setdefault(predicate, set()).update(values)
            delta = fresh
        raise RuntimeError(
            f"semi-naive evaluation did not converge in {max_iterations} iterations"
        )

    # -- rule application -------------------------------------------------------------
    def _apply_rule(
        self,
        rule: Clause,
        facts: FactStore,
        delta: Optional[FactStore],
    ) -> Iterable[Tuple[str, Tuple]]:
        """Yield ``(predicate, values)`` pairs derived by one rule.

        With a ``delta`` store, at least one body atom must be matched against
        the delta (the semi-naive discipline); without one, all body atoms are
        matched against the full store.
        """
        body = rule.body
        positions = range(len(body)) if delta is not None else [None]
        emitted: Set[Tuple[str, Tuple]] = set()
        for delta_position in positions:
            if delta is not None:
                # Skip delta positions whose predicate gained nothing new.
                predicate = body[delta_position].predicate
                if not delta.get(predicate):
                    continue
            for bindings in self._join(body, 0, {}, facts, delta, delta_position):
                head = rule.head.substitute(bindings)
                if not head.is_ground:
                    raise ValueError(f"derived a non-ground head from {rule!r}")
                values = tuple(term.value for term in head.terms)
                result = (head.predicate, values)
                if result not in emitted:
                    emitted.add(result)
                    yield result

    def _join(
        self,
        body: Tuple[PredicateAtom, ...],
        index: int,
        bindings: Dict[str, object],
        facts: FactStore,
        delta: Optional[FactStore],
        delta_position: Optional[int],
    ) -> Iterable[Dict[str, object]]:
        if index == len(body):
            yield dict(bindings)
            return
        atom = body[index]
        source = facts
        if delta is not None and index == delta_position:
            source = delta
        for values in source.get(atom.predicate, ()):
            if len(values) != atom.arity:
                continue
            extended = self._unify(atom, values, bindings)
            if extended is None:
                continue
            yield from self._join(body, index + 1, extended, facts, delta, delta_position)

    @staticmethod
    def _unify(
        atom: PredicateAtom, values: Tuple, bindings: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        extended = dict(bindings)
        for term, value in zip(atom.terms, values):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                name = term.name
                if name in extended:
                    if extended[name] != value:
                        return None
                else:
                    extended[name] = value
        return extended


def evaluate(program: DatalogProgram) -> FactStore:
    """Semi-naive evaluation of ``program`` (the default strategy)."""
    return DatalogEngine(program).evaluate(semi_naive=True)


def evaluate_naive(program: DatalogProgram) -> FactStore:
    """Naive evaluation of ``program`` (used as a baseline in benchmarks)."""
    return DatalogEngine(program).evaluate(semi_naive=False)
