"""EXPLAIN rendering: pretty-print optimized plans with cardinalities.

The renderer turns the IR of :mod:`repro.plan.ir` into an indented text tree:
one block per stratum (apply-once vs fixpoint), one block per rule, one line
per leaf showing the optimizer's **estimated** surviving rows and chosen
access path, and — when an execution record from
:func:`repro.plan.execute.match_plan` is supplied — the **actual** rows that
survived each leaf, so a bad estimate is visible at a glance.

EXPLAIN ANALYZE: a record created with ``{"timed": True}`` (see
``Session.explain(analyze=True)`` and the CLI ``--explain-analyze`` flags)
additionally carries per-leaf and whole-match wall time
(``by_leaf_ns``/``wall_ns``), and the renderer prints them next to the
actual rows — so a leaf that survives few rows but burns the time budget is
just as visible as a bad cardinality estimate.  The vectorized executor also
records per-leaf batch counts (``by_leaf_batches``: how many batches the
operator dispatched and the total rows they carried), rendered as
``N batches, M rows/batch`` so a leaf that fragments the pipeline into
tiny batches is visible too.

``Program.explain()``, the CLI's ``run/query --explain`` and the store's
``store query --explain`` all render through this module.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.trace import format_ns
from repro.plan.ir import BodyPlan, ProgramPlan, RuleNode, leaf_key

__all__ = ["render_body_plan", "render_rule_node", "render_program_plan"]


def _leaf_lines(plan: BodyPlan, record: Optional[dict], indent: str) -> list:
    lines = []
    if plan.pruned is not None:
        lines.append(f"{indent}pruned by shape analysis: {plan.pruned}")
    actuals: Dict = (record or {}).get("by_leaf", {})
    batches: Dict = (record or {}).get("by_leaf_batches", {})
    timings: Dict = (record or {}).get("by_leaf_ns", {})
    for position, (leaf, estimate) in enumerate(
        zip(plan.leaves, plan.estimates or (None,) * len(plan.leaves)), start=1
    ):
        line = f"{indent}{position}. {leaf.describe()}"
        notes = []
        if estimate is not None:
            notes.append(f"est {estimate.rows:g} rows via {estimate.access}")
            if estimate.shape is not None:
                notes.append(f"shape {estimate.shape}")
        actual = actuals.get(leaf_key(leaf))
        if actual is not None:
            notes.append(f"actual {actual}")
        dispatched = batches.get(leaf_key(leaf))
        if dispatched is not None:
            count, total_rows = dispatched
            per_batch = total_rows / count if count else 0.0
            notes.append(f"{count} batches, {per_batch:g} rows/batch")
        elapsed = timings.get(leaf_key(leaf))
        if elapsed is not None:
            notes.append(f"time {format_ns(elapsed)}")
        if notes:
            line += "  [" + ", ".join(notes) + "]"
        lines.append(line)
    if record is not None and "rows" in record:
        summary = f"{indent}=> {record['rows']} substitutions (actual)"
        if "wall_ns" in record:
            summary += f" in {format_ns(record['wall_ns'])}"
        lines.append(summary)
    return lines


def render_body_plan(
    plan: BodyPlan, *, record: Optional[dict] = None, header: Optional[str] = None
) -> str:
    """Render one body/query plan (the shape behind ``query --explain``)."""
    kind = "join" if len(plan.leaves) > 1 else "match"
    mode = "cost-ordered" if plan.optimized else "source-ordered"
    lines = []
    if header:
        lines.append(header)
    lines.append(f"{kind} over {len(plan.leaves)} leaves ({mode})")
    lines.extend(_leaf_lines(plan, record, "  "))
    return "\n".join(lines)


def render_rule_node(
    node: RuleNode, *, record: Optional[dict] = None, indent: str = ""
) -> str:
    """Render one planned rule: the head projection over its body plan."""
    lines = [f"{indent}rule {node.rule.to_text()}"]
    if node.body_plan is None:
        lines.append(f"{indent}  emit ground head (fact)")
        return "\n".join(lines)
    lines.append(f"{indent}  project {node.rule.head.to_text()}")
    lines.extend(_leaf_lines(node.body_plan, record, indent + "    "))
    return "\n".join(lines)


def render_program_plan(
    plan: ProgramPlan,
    *,
    iterations: Optional[int] = None,
    rule_records: Optional[Dict] = None,
) -> str:
    """Render a whole program plan, stratum by stratum.

    ``rule_records`` maps a :class:`~repro.calculus.rules.Rule` to the
    execution record collected for it; ``iterations`` is the fixpoint's
    actual round count when the program has been evaluated.
    """
    recursive = sum(1 for stratum in plan.strata if stratum.recursive)
    lines = [f"program plan: {len(plan.strata)} strata ({recursive} recursive)"]
    for number, stratum in enumerate(plan.strata, start=1):
        if stratum.recursive:
            note = f", {iterations} iterations total" if iterations is not None else ""
            lines.append(f"stratum {number}: fixpoint (iterate to closure{note})")
        else:
            lines.append(f"stratum {number}: apply once")
        for node in stratum.rules:
            record = None
            if rule_records is not None:
                record = rule_records.get(node.rule)
            lines.append(render_rule_node(node, record=record, indent="  "))
    return "\n".join(lines)
