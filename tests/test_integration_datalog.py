"""Integration tests: the calculus closure against the Datalog baseline.

Example 4.5 (descendants of Abraham) is expressible both as a complex-object
program and as a flat Datalog program; the two engines — and the relational
baseline computing the same transitive closure by iterated joins — must agree
on every generated genealogy.
"""

import pytest

from repro import Program, parse_formula
from repro.datalog import DatalogEngine
from repro.relational.algebra import equijoin, project, rename, union as relation_union
from repro.relational.relation import Relation
from repro.workloads import make_genealogy

DESCENDANTS_SOURCE = """
[doa: {abraham}].
[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].
"""


def relational_descendants(parent_relation: Relation, root: str) -> set:
    """Iterated-join transitive closure over the flat parent relation."""
    known = Relation(("person",), [{"person": root}])
    while True:
        parents = rename(known, {"person": "parent"})
        next_generation = project(
            equijoin(parents, rename(parent_relation, {"parent": "p", "child": "c"}), [("parent", "p")]),
            ["c"],
        )
        next_generation = rename(next_generation, {"c": "person"})
        combined = relation_union(known, next_generation)
        if combined == known:
            return {row["person"] for row in known}
        known = combined


@pytest.mark.parametrize("generations,fanout", [(0, 2), (1, 3), (3, 2), (4, 1), (2, 3)])
class TestThreeEnginesAgree:
    def test_calculus_vs_datalog_vs_relational(self, generations, fanout):
        tree = make_genealogy(generations, fanout)

        program = Program.from_source(DESCENDANTS_SOURCE, database=tree.family_object)
        calculus_answer = {
            element.value
            for element in program.query(parse_formula("[doa: X]")).get("doa")
        }

        datalog_answer = {
            values[0] for values in DatalogEngine(tree.datalog_program).query("doa")
        }

        relational_answer = relational_descendants(tree.parent_relation, tree.root)

        expected = set(tree.expected_descendants)
        assert calculus_answer == expected
        assert datalog_answer == expected
        assert relational_answer == expected


class TestSemiNaiveAgreesWithNaive:
    def test_on_generated_genealogies(self):
        tree = make_genealogy(4, 2)
        engine = DatalogEngine(tree.datalog_program)
        assert engine.query("doa", semi_naive=True) == engine.query("doa", semi_naive=False)
