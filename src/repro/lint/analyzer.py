"""The analyzer entry points: whole programs, prepared queries, source text.

``lint_rules`` is the core pass: it builds the engine's dependency graph
once, runs the program-graph analyses (:mod:`repro.lint.graph`), the
formula-level analyses (:mod:`repro.lint.formulas`) and the plan-level
analyses (:mod:`repro.lint.plans`) over every clause, and assembles a
deterministic :class:`~repro.lint.diagnostics.LintReport`.  ``lint_source``
parses first (so findings carry line/column spans), ``lint_query`` analyses
one query formula against an optional program, and ``check_containment`` is
the RL001 helper for head/body pairs that have not been admitted as a
:class:`~repro.calculus.rules.Rule` yet (the Rule constructor rejects them).

Every run publishes its outcome to the observability registry:
``lint.runs``, ``lint.errors``, ``lint.warnings`` and a per-code counter
``lint.code.RLxxx`` — so a fleet's metrics show *which* diagnostics its
programs trip, not just how many.

Linting never mutates: rules, formulae and statistics are read-only inputs,
and identical inputs produce identical reports (the property tests pin
both).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple, Union

from repro.calculus.rules import Rule, RuleSet
from repro.calculus.terms import Formula, formula as to_formula
from repro.engine.dependency import DependencyGraph
from repro.lint.diagnostics import Diagnostic, LintReport, finish_report
from repro.lint.formulas import check_query_formula, check_rule_formulas
from repro.lint.graph import (
    check_dead_rules,
    check_divergence,
    check_duplicates,
    strata_summary,
)
from repro.lint.plans import check_query_plan, check_rule_plans
from repro.lint.shapes import (
    check_params,
    check_query_shape,
    check_shapes,
    infer_shapes,
)
from repro.obs import metrics
from repro.plan.statistics import DatabaseStatistics

__all__ = ["lint_rules", "lint_source", "lint_query", "check_containment"]


def _publish(report: LintReport) -> None:
    """Fold one report into the process-wide metrics registry."""
    registry = metrics.REGISTRY
    registry.counter("lint.runs").inc()
    if report.errors:
        registry.counter("lint.errors").inc(report.errors)
    if report.warnings:
        registry.counter("lint.warnings").inc(report.warnings)
    for code, count in report.by_code().items():
        registry.counter(f"lint.code.{code}").inc(count)


def _as_rules(rules: Union[RuleSet, Sequence[Rule]]) -> Sequence[Rule]:
    if isinstance(rules, RuleSet):
        return rules.rules
    return tuple(rules)


def lint_rules(
    rules: Union[RuleSet, Sequence[Rule]],
    *,
    query: Optional[Union[Formula, str]] = None,
    statistics: Optional[DatabaseStatistics] = None,
    database=None,
    params=None,
) -> LintReport:
    """Run every analysis over a program; the main entry point.

    ``query`` (a formula, or source text to parse) enables the dead-rule
    analysis and extends the plan checks to the query itself;
    ``statistics`` (a :class:`~repro.plan.statistics.DatabaseStatistics`)
    enables the RL303 missing-path check and cost-accurate orderings;
    ``database`` (a complex object) closes the world for the shape pass —
    RL2xx findings then describe the program *against that database* rather
    than against its own facts alone; ``params`` (a name → value mapping)
    enables the RL204 shape-impossible-binding check on the query.
    """
    program = _as_rules(rules)
    if isinstance(query, str):
        from repro.parser import parse_formula

        query = parse_formula(query)

    graph = DependencyGraph(program)
    findings: List[Diagnostic] = []
    findings.extend(check_divergence(program, graph))
    findings.extend(check_duplicates(program))
    findings.extend(check_dead_rules(program, graph, query))
    for index, rule in enumerate(program):
        findings.extend(check_rule_formulas(rule, index))
    findings.extend(check_rule_plans(program, statistics))
    shapes = infer_shapes(tuple(program), database)
    findings.extend(check_shapes(program, shapes, query=query))
    if query is not None:
        findings.extend(check_query_formula(query))
        findings.extend(check_query_plan(query, statistics, program))
        if params:
            findings.extend(check_params(shapes, query, params))

    facts = sum(1 for rule in program if rule.is_fact)
    report = finish_report(
        findings,
        strata=strata_summary(graph),
        rules=len(program) - facts,
        facts=facts,
        shapes=shapes.summary_lines(),
    )
    _publish(report)
    return report


def lint_source(
    text: str,
    *,
    query: Optional[Union[Formula, str]] = None,
    statistics: Optional[DatabaseStatistics] = None,
    database=None,
    params=None,
) -> LintReport:
    """Parse program source and lint it; findings carry line/column spans."""
    from repro.parser import parse_program

    return lint_rules(
        parse_program(text),
        query=query,
        statistics=statistics,
        database=database,
        params=params,
    )


def lint_query(
    query: Union[Formula, str],
    *,
    statistics: Optional[DatabaseStatistics] = None,
    rules: Union[RuleSet, Sequence[Rule]] = (),
    params=None,
) -> LintReport:
    """Lint one query formula (what ``Session.prepare(lint=...)`` runs).

    Only the query's own findings are reported; ``rules`` (the session's
    program, if any) merely keep RL303 from flagging derived paths that
    exist once the program has run, and seed the shape pass (RL201/RL203
    against the program's derivable shapes; RL204 when ``params`` carries
    the values about to be bound).
    """
    if isinstance(query, str):
        from repro.parser import parse_formula

        query = parse_formula(query)
    if statistics is None:
        # The statistics-free pass is a pure function of (query, rules) —
        # exactly what every ``Session.prepare`` runs — so its report is
        # memoized the same way ``compile_body`` memoizes plans (reports are
        # frozen, so sharing one instance is safe).  Metrics are published
        # on the miss only: a cache hit is not a new analysis run.  This is
        # what keeps the default ``lint="warn"`` within the ≤1.10x prepare
        # budget ``benchmarks/run_lint_benchmarks.py`` pins.
        report = _query_report(query, tuple(_as_rules(rules)))
        if params:
            report = _with_param_findings(report, query, _as_rules(rules), params)
        return report
    findings = list(check_query_formula(query))
    findings.extend(check_query_plan(query, statistics, _as_rules(rules)))
    shapes = infer_shapes(tuple(_as_rules(rules)))
    findings.extend(check_query_shape(shapes, query))
    if params:
        findings.extend(check_params(shapes, query, params))
    report = finish_report(findings)
    _publish(report)
    return report


def _with_param_findings(
    report: LintReport,
    query: Formula,
    rules: Sequence[Rule],
    params,
) -> LintReport:
    """Fold RL204 findings into a (possibly cached) query report.

    Parameter values vary per call, so this stays *outside* the
    ``_query_report`` cache; the shape inference itself is memoized, making
    the per-call cost one abstract query match plus a membership test per
    parameter.  The extra findings' counters are published manually — the
    cached report already published its own on the miss.
    """
    extra = check_params(infer_shapes(tuple(rules)), query, params)
    if not extra:
        return report
    registry = metrics.REGISTRY
    for diagnostic in extra:
        registry.counter("lint.warnings").inc()
        registry.counter(f"lint.code.{diagnostic.code}").inc()
    return finish_report(
        report.diagnostics + tuple(extra),
        strata=report.strata,
        rules=report.rules,
        facts=report.facts,
        shapes=report.shapes,
    )


@lru_cache(maxsize=512)
def _query_report(query: Formula, rules: Tuple[Rule, ...]) -> LintReport:
    findings = list(check_query_formula(query))
    findings.extend(check_query_plan(query, None, rules))
    findings.extend(check_query_shape(infer_shapes(rules), query))
    report = finish_report(findings)
    _publish(report)
    return report


def _containment_formula(value) -> Formula:
    """Coerce a head/body argument: source text parses, the rest converts."""
    if isinstance(value, str):
        from repro.parser import parse_formula

        return parse_formula(value)
    return to_formula(value)


def check_containment(head, body) -> List[Diagnostic]:
    """RL001 findings for a prospective ``head :- body`` pair.

    The :class:`~repro.calculus.rules.Rule` constructor *rejects* clauses
    violating Definition 4.3, so admitted rules can never trip RL001; this
    helper lets tooling diagnose a head/body pair before construction and
    report the violation with the same code and hint.
    """
    head_formula = _containment_formula(head)
    body_formula = _containment_formula(body) if body is not None else None
    body_variables = (
        body_formula.variables() if body_formula is not None else frozenset()
    )
    return [
        Diagnostic(
            code="RL001",
            severity="error",
            message=f"head variable {name} does not occur in the body",
            hint=(
                "every head variable must be bound by the body (Definition"
                " 4.3); bind it in the body or drop it from the head"
            ),
            formula=name,
        )
        for name in sorted(head_formula.variables() - body_variables)
    ]
