"""Unit tests for well-formed formulae (repro.calculus.terms)."""

import pytest

from repro.core.builder import obj
from repro.core.objects import BOTTOM, Atom
from repro.calculus.terms import (
    Constant,
    SetFormula,
    TupleFormula,
    Variable,
    formula,
    var,
)


class TestVariable:
    def test_name_and_variables(self):
        assert var("X").name == "X"
        assert var("X").variables() == {"X"}
        assert not var("X").is_ground

    def test_naming_convention_enforced(self):
        with pytest.raises(ValueError):
            Variable("lowercase")
        with pytest.raises(ValueError):
            Variable("")

    def test_underscore_allowed(self):
        assert Variable("_x").name == "_x"

    def test_equality(self):
        assert var("X") == var("X")
        assert var("X") != var("Y")
        assert hash(var("X")) == hash(var("X"))


class TestConstant:
    def test_wraps_objects(self):
        constant = Constant(obj(5))
        assert constant.is_ground
        assert constant.value == Atom(5)

    def test_rejects_non_objects(self):
        with pytest.raises(TypeError):
            Constant(5)

    def test_to_text(self):
        assert Constant(obj({"a": 1})).to_text() == "[a: 1]"


class TestTupleFormula:
    def test_variables_collected(self):
        tf = TupleFormula({"a": var("X"), "b": Constant(obj(1)), "c": var("Y")})
        assert tf.variables() == {"X", "Y"}

    def test_get_and_attributes(self):
        tf = TupleFormula({"b": var("X"), "a": Constant(obj(1))})
        assert tf.attributes == ("a", "b")
        assert tf.get("b") == var("X")
        assert tf.get("missing") is None

    def test_equality_ignores_attribute_order(self):
        assert TupleFormula({"a": var("X"), "b": var("Y")}) == TupleFormula(
            {"b": var("Y"), "a": var("X")}
        )

    def test_rejects_non_formula_values(self):
        with pytest.raises(TypeError):
            TupleFormula({"a": 1})


class TestSetFormula:
    def test_variables_collected(self):
        sf = SetFormula([var("X"), Constant(obj(2))])
        assert sf.variables() == {"X"}
        assert len(sf) == 2

    def test_equality_ignores_element_order(self):
        assert SetFormula([var("X"), Constant(obj(1))]) == SetFormula(
            [Constant(obj(1)), var("X")]
        )

    def test_rejects_non_formula_elements(self):
        with pytest.raises(TypeError):
            SetFormula([1])


class TestFormulaBuilder:
    def test_python_literals(self):
        built = formula({"r1": [{"a": var("X"), "b": "b"}]})
        assert isinstance(built, TupleFormula)
        assert built.variables() == {"X"}
        inner = built.get("r1")
        assert isinstance(inner, SetFormula)

    def test_none_becomes_bottom_constant(self):
        built = formula({"a": None})
        assert built.get("a") == Constant(BOTTOM)

    def test_existing_formulae_pass_through(self):
        existing = var("X")
        assert formula(existing) is existing

    def test_objects_become_constants(self):
        assert formula(obj([1, 2])) == Constant(obj([1, 2]))

    def test_ground_formula_flag(self):
        assert formula({"a": 1, "b": [2]}).is_ground
        assert not formula({"a": var("X")}).is_ground

    def test_to_text_matches_parser_notation(self):
        built = formula({"r1": [{"A": var("X"), "B": "b"}]})
        assert built.to_text() == "[r1: {[A: X, B: b]}]"
