#!/usr/bin/env python3
"""Migrating a relational database into complex objects — and querying both.

The paper stresses that the relational model is a special case of its model
("a relational database is an object") and glosses every calculus example in
relational terms.  This example makes the embedding concrete:

* build a small company database with the flat relational engine;
* convert it losslessly to a single complex object (and back);
* run the same queries as relational-algebra plans, as calculus formulae/rules,
  and as translated algebra plans over objects, checking the three agree;
* then *denormalize*: nest the employee relation inside each department —
  something the flat model cannot even represent — and query the nested form.

Run with::

    python examples/relational_migration.py
"""

from repro import parse_formula, parse_rule
from repro.calculus.interpretation import interpret
from repro.algebra.expressions import Join, Project, Relation as Rel, SelectPattern
from repro.algebra.ops import nest_object
from repro.algebra.translate import translate_rule
from repro.core.builder import obj
from repro.relational.algebra import equijoin, project, select
from repro.relational.bridge import database_to_object, object_to_database, object_to_relation
from repro.relational.database import RelationalDatabase
from repro.relational.relation import Relation


def build_company() -> RelationalDatabase:
    employees = Relation(
        ("emp", "dept", "salary"),
        [
            {"emp": "ann", "dept": "cad", "salary": 120},
            {"emp": "bob", "dept": "cad", "salary": 95},
            {"emp": "carol", "dept": "docs", "salary": 80},
            {"emp": "dave", "dept": "docs", "salary": 85},
            {"emp": "erin", "dept": "kb", "salary": 150},
        ],
        name="employee",
    )
    departments = Relation(
        ("dept", "city"),
        [
            {"dept": "cad", "city": "austin"},
            {"dept": "docs", "city": "paris"},
            {"dept": "kb", "city": "austin"},
        ],
        name="department",
    )
    return RelationalDatabase({"employee": employees, "department": departments})


def main() -> None:
    company = build_company()
    as_object = database_to_object(company)
    print("The relational database as a single complex object:")
    print(f"  {as_object}")
    assert object_to_database(as_object) == company
    print("  round trip back to relations: exact")

    # --- query 1: selection ------------------------------------------------------------
    relational = project(select(company["department"], city="austin"), ["dept"])
    calculus = interpret(parse_formula("[department: {[dept: D, city: austin]}]"), as_object)
    calculus_rel = object_to_relation(calculus.get("department"), attributes=("dept", "city"))
    print("\nDepartments in austin:")
    print(f"  relational algebra: {sorted(row['dept'] for row in relational)}")
    print(f"  calculus formula  : {sorted(row['dept'] for row in project(calculus_rel, ['dept']))}")

    # --- query 2: join, three ways ------------------------------------------------------
    join_rule = parse_rule(
        "[r: {[emp: E, city: C]}] :-"
        " [employee: {[emp: E, dept: D]}, department: {[dept: D, city: C]}]"
    )
    via_rule = join_rule.apply(as_object).get("r")

    # Rename the department key so the equi-join operands have disjoint schemas.
    departments_renamed = Relation(
        ("dept2", "city"),
        [{"dept2": row["dept"], "city": row["city"]} for row in company["department"]],
    )
    via_algebra_flat = project(
        equijoin(company["employee"], departments_renamed, [("dept", "dept2")]),
        ["emp", "city"],
    )

    translated = translate_rule(join_rule).apply(as_object).get("r")

    print("\nWho works where (employee ⋈ department):")
    print(f"  calculus rule        : {via_rule}")
    print(f"  flat algebra         : {sorted((r['emp'], r['city']) for r in via_algebra_flat)}")
    print(f"  translated plan      : agrees with the rule -> {translated == via_rule}")

    # --- query 3: an explicit object-algebra plan ---------------------------------------
    plan = Project(
        Join(
            SelectPattern(Rel("department"), obj({"city": "austin"})),
            Rel("employee"),
            [("dept", "dept")],
        ),
        ["emp"],
    )
    print(f"  object-algebra plan  : {plan.describe()}")
    print(f"    employees in austin departments: {plan.evaluate(as_object)}")

    # --- denormalize: nest employees inside departments ---------------------------------
    employees_by_dept = nest_object(
        as_object.get("employee"), ["emp", "salary"], into="staff"
    )
    print("\nNested (NF²-style) view the flat model cannot hold:")
    print(f"  {employees_by_dept}")
    # Query the nested form directly: departments employing someone above 100.
    rich = interpret(
        parse_formula("{[dept: D, staff: {[emp: E, salary: 120]}]}"), employees_by_dept
    )
    print(f"  departments with a 120-salary employee: {rich}")


if __name__ == "__main__":
    main()
