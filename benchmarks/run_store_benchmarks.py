#!/usr/bin/env python
"""Emit the machine-readable store benchmark record ``BENCH_store.json``.

Companion to ``run_benchmarks.py`` (which covers the core object layer): this
script measures the storage subsystem without pytest and records per-benchmark
median nanoseconds —

* **commit throughput** — a 16-write transaction committed against the
  in-memory engine and against the fsync-per-commit write-ahead log;
* **recovery time** — replaying a WAL with ``RECOVERY_OBJECTS`` committed
  objects back into a live engine;
* **indexed-write throughput** — the before/after of the PathIndex reverse
  map: overwriting one object under a populated index with O(keys) eviction
  versus the seed's full-table scan.

Usage::

    PYTHONPATH=src python benchmarks/run_store_benchmarks.py [--smoke] [--output PATH]

``--smoke`` shrinks sizes and repetitions so CI can exercise the harness in
seconds; in that mode the speedup target is recorded but not enforced.  In
full mode the script exits non-zero unless the reverse-map indexed write is
at least ``TARGET_SPEEDUP``× faster than the scan-eviction baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

TARGET_SPEEDUP = 5.0  # reverse-map vs scan-eviction indexed writes
WRITES_PER_COMMIT = 16


def _median_ns(func, *, repeats: int, number: int) -> float:
    """Median wall time of one call, measured over ``repeats`` batches."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for _ in range(number):
            func()
        samples.append((time.perf_counter_ns() - start) / number)
    return statistics.median(samples)


def _make_scan_index_class():
    """The seed's PathIndex eviction: scan every entry to drop one name."""
    from repro.store.index import PathIndex

    class ScanEvictionIndex(PathIndex):
        def remove(self, name):
            if name not in self._keys_by_name:
                return
            empty_keys = []
            for key, names in self._entries.items():
                names.discard(name)
                if not names:
                    empty_keys.append(key)
            for key in empty_keys:
                del self._entries[key]
            del self._keys_by_name[name]

    return ScanEvictionIndex


def run_suite(smoke: bool) -> dict:
    from repro.core.builder import obj
    from repro.store.database import ObjectDatabase
    from repro.store.index import PathIndex
    from repro.store.storage import FileStorage

    repeats = 3 if smoke else 9
    indexed_objects = 300 if smoke else 2000
    recovery_objects = 100 if smoke else 1000
    results = {}

    def record(name: str, func, *, number: int, objects: int) -> float:
        median = _median_ns(func, repeats=repeats, number=(1 if smoke else number))
        results[name] = {"median_ns": round(median, 1), "objects": objects}
        return median

    payloads = [obj({"slot": position}) for position in range(WRITES_PER_COMMIT)]

    def commit_batch(database):
        with database.transaction() as txn:
            for position, payload in enumerate(payloads):
                txn.put(f"slot{position}", payload)

    # Commit throughput: in-memory engine.
    memory_db = ObjectDatabase()
    record(
        "commit_memory",
        lambda: commit_batch(memory_db),
        number=200,
        objects=WRITES_PER_COMMIT,
    )

    with tempfile.TemporaryDirectory() as scratch:
        # Commit throughput: WAL engine, one append + fsync per commit.
        wal_db = ObjectDatabase(FileStorage(os.path.join(scratch, "commits.wal")))
        record(
            "commit_wal",
            lambda: commit_batch(wal_db),
            number=20,
            objects=WRITES_PER_COMMIT,
        )
        wal_db.close()

        # Recovery: replay a log with `recovery_objects` live objects.
        recovery_path = os.path.join(scratch, "recovery.wal")
        seeding = ObjectDatabase(FileStorage(recovery_path))
        for position in range(recovery_objects):
            seeding.put(f"obj{position}", obj({"position": position, "tag": f"t{position}"}))
        seeding.close()

        def recover():
            storage = FileStorage(recovery_path)
            names = storage.names()
            storage.close()
            return len(names)

        assert recover() == recovery_objects
        record("wal_recovery", recover, number=3, objects=recovery_objects)

    # Indexed writes: reverse-map eviction (current) vs full-scan (seed).
    def build_index(index_class):
        index = index_class("name")
        for position in range(indexed_objects):
            index.add(f"obj{position}", obj({"name": f"n{position}"}))
        return index

    reverse_index = build_index(PathIndex)
    scan_index = build_index(_make_scan_index_class())
    target = f"obj{indexed_objects // 2}"
    replacement = obj({"name": "replacement"})

    fast = record(
        "indexed_put_reverse_map",
        lambda: reverse_index.add(target, replacement),
        number=2000,
        objects=indexed_objects,
    )
    slow = record(
        "indexed_put_scan",
        lambda: scan_index.add(target, replacement),
        number=50,
        objects=indexed_objects,
    )

    return {
        "schema": "bench-store/v1",
        "mode": "smoke" if smoke else "full",
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "target_speedup": TARGET_SPEEDUP,
        "writes_per_commit": WRITES_PER_COMMIT,
        "benchmarks": results,
        "speedups": {"indexed_write": round(slow / fast, 2)},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI mode, no enforcement")
    parser.add_argument("--output", default="BENCH_store.json", help="where to write the record")
    args = parser.parse_args(argv)

    record = run_suite(args.smoke)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, stats in sorted(record["benchmarks"].items()):
        print(f"{name:28s} {stats['median_ns']:>14,.0f} ns  ({stats['objects']} objects)")
    for name, ratio in sorted(record["speedups"].items()):
        print(f"speedup {name:20s} {ratio:>8.1f}x (target {TARGET_SPEEDUP:.0f}x)")
    print(f"wrote {args.output}")

    if not args.smoke:
        failing = {k: v for k, v in record["speedups"].items() if v < TARGET_SPEEDUP}
        if failing:
            print(f"FAIL: speedups below target: {failing}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
