"""Bottom-up evaluation of Datalog programs: naive and semi-naive.

Both strategies compute the same least fixpoint (the minimal model of a
positive program); they differ in how much work each iteration repeats:

* **naive** evaluation re-derives every fact from the full database on every
  round until nothing new appears — the direct analogue of the paper's
  Theorem 4.1 series;
* **semi-naive** evaluation only joins against the *delta* (facts newly
  derived in the previous round), the standard optimisation that the
  closure-vs-Datalog benchmark uses as its strongest baseline.

Facts are stored per predicate as sets of constant tuples, wrapped in an
:class:`_IndexedFactStore` that maintains **bound-argument hash indexes**: the
first time a join probes a predicate with a particular set of bound positions
(constants in the atom plus variables already bound by earlier body atoms),
the store builds a hash index keyed on the values at those positions, and
every subsequently added fact keeps the index current.  Join loops then probe
the index instead of scanning the predicate's whole extension.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datalog.rules import Clause, DatalogProgram
from repro.datalog.terms import Constant, PredicateAtom, Variable

__all__ = ["DatalogEngine", "evaluate", "evaluate_naive"]

FactStore = Dict[str, Set[Tuple]]
"""Facts grouped by predicate name; each fact is a tuple of constant values."""


class _IndexedFactStore:
    """A predicate → fact-tuples store with bound-argument hash indexes.

    Indexes are identified per predicate by ``positions``, the sorted tuple
    of argument positions the probe has values for.  They are built on demand
    at the first probe with that position pattern and maintained
    incrementally by :meth:`add` (which touches only the inserted predicate's
    patterns), so a store that is never probed with bound arguments costs
    nothing beyond the plain dict.
    """

    __slots__ = ("facts", "_indexes")

    def __init__(self, facts: Optional[FactStore] = None):
        self.facts: FactStore = facts if facts is not None else {}
        self._indexes: Dict[str, Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]]] = {}

    def get(self, predicate: str):
        """The full extension of ``predicate`` (empty when unknown)."""
        return self.facts.get(predicate, ())

    def contains(self, predicate: str, values: Tuple) -> bool:
        return values in self.facts.get(predicate, set())

    def add(self, predicate: str, values: Tuple) -> bool:
        """Insert one fact; returns ``False`` when it was already present."""
        extension = self.facts.setdefault(predicate, set())
        if values in extension:
            return False
        extension.add(values)
        for positions, buckets in self._indexes.get(predicate, {}).items():
            key = self._key(values, positions)
            if key is not None:
                buckets.setdefault(key, []).append(values)
        return True

    def candidates(self, predicate: str, bound: Dict[int, object]):
        """Facts of ``predicate`` agreeing with ``bound`` on its positions.

        With no bound positions this is the full extension; otherwise the
        matching bucket of the (possibly freshly built) hash index.
        """
        if not bound:
            return self.get(predicate)
        positions = tuple(sorted(bound))
        index = self._indexes.get(predicate, {}).get(positions)
        if index is None:
            index = self._build(predicate, positions)
        probe = tuple(bound[position] for position in positions)
        return index.get(probe, ())

    def _build(self, predicate: str, positions: Tuple[int, ...]):
        index: Dict[Tuple, List[Tuple]] = {}
        for values in self.facts.get(predicate, ()):
            key = self._key(values, positions)
            if key is not None:
                index.setdefault(key, []).append(values)
        self._indexes.setdefault(predicate, {})[positions] = index
        return index

    @staticmethod
    def _key(values: Tuple, positions: Tuple[int, ...]) -> Optional[Tuple]:
        if positions and positions[-1] >= len(values):
            return None
        return tuple(values[position] for position in positions)


class DatalogEngine:
    """Evaluator for a :class:`DatalogProgram`."""

    def __init__(self, program: DatalogProgram):
        self.program = program

    # -- public API -----------------------------------------------------------------
    def evaluate(self, semi_naive: bool = True, max_iterations: int = 10_000) -> FactStore:
        """Compute the minimal model and return the full fact store."""
        store = _IndexedFactStore(self._initial_facts())
        rules = self.program.rules
        if not rules:
            return store.facts
        if semi_naive:
            self._run_semi_naive(store, rules, max_iterations)
        else:
            self._run_naive(store, rules, max_iterations)
        return store.facts

    def query(self, predicate: str, semi_naive: bool = True) -> FrozenSet[Tuple]:
        """Evaluate the program and return the facts of one predicate."""
        return frozenset(self.evaluate(semi_naive=semi_naive).get(predicate, set()))

    # -- evaluation strategies --------------------------------------------------------
    def _initial_facts(self) -> FactStore:
        facts: FactStore = {}
        for clause in self.program.facts:
            if not clause.head.is_ground:
                raise ValueError(f"facts must be ground: {clause!r}")
            values = tuple(term.value for term in clause.head.terms)
            facts.setdefault(clause.head.predicate, set()).add(values)
        return facts

    def _run_naive(
        self, store: _IndexedFactStore, rules: List[Clause], max_iterations: int
    ) -> None:
        for _ in range(max_iterations):
            new_facts = []
            for rule in rules:
                for derived in self._apply_rule(rule, store, delta=None):
                    predicate, values = derived
                    if not store.contains(predicate, values):
                        new_facts.append(derived)
            if not new_facts:
                return
            for predicate, values in new_facts:
                store.add(predicate, values)
        raise RuntimeError(f"naive evaluation did not converge in {max_iterations} iterations")

    def _run_semi_naive(
        self, store: _IndexedFactStore, rules: List[Clause], max_iterations: int
    ) -> None:
        # The first round must consider every fact; afterwards only the delta.
        delta = _IndexedFactStore({name: set(values) for name, values in store.facts.items()})
        for _ in range(max_iterations):
            fresh: FactStore = {}
            for rule in rules:
                for predicate, values in self._apply_rule(rule, store, delta=delta):
                    if not store.contains(predicate, values):
                        fresh.setdefault(predicate, set()).add(values)
            if not any(fresh.values()):
                return
            for predicate, values in fresh.items():
                for value in values:
                    store.add(predicate, value)
            delta = _IndexedFactStore(fresh)
        raise RuntimeError(
            f"semi-naive evaluation did not converge in {max_iterations} iterations"
        )

    # -- rule application -------------------------------------------------------------
    def _apply_rule(
        self,
        rule: Clause,
        store: _IndexedFactStore,
        delta: Optional[_IndexedFactStore],
    ) -> Iterable[Tuple[str, Tuple]]:
        """Yield ``(predicate, values)`` pairs derived by one rule.

        With a ``delta`` store, at least one body atom must be matched against
        the delta (the semi-naive discipline); without one, all body atoms are
        matched against the full store.
        """
        body = rule.body
        positions = range(len(body)) if delta is not None else [None]
        emitted: Set[Tuple[str, Tuple]] = set()
        for delta_position in positions:
            if delta is not None:
                # Skip delta positions whose predicate gained nothing new.
                predicate = body[delta_position].predicate
                if not delta.facts.get(predicate):
                    continue
            for bindings in self._join(body, 0, {}, store, delta, delta_position):
                head = rule.head.substitute(bindings)
                if not head.is_ground:
                    raise ValueError(f"derived a non-ground head from {rule!r}")
                values = tuple(term.value for term in head.terms)
                result = (head.predicate, values)
                if result not in emitted:
                    emitted.add(result)
                    yield result

    def _join(
        self,
        body: Tuple[PredicateAtom, ...],
        index: int,
        bindings: Dict[str, object],
        store: _IndexedFactStore,
        delta: Optional[_IndexedFactStore],
        delta_position: Optional[int],
    ) -> Iterable[Dict[str, object]]:
        if index == len(body):
            yield dict(bindings)
            return
        atom = body[index]
        source = store
        if delta is not None and index == delta_position:
            source = delta
        # Probe the bound-argument index: every position whose value is pinned
        # by a constant or an already-bound variable narrows the scan.
        bound: Dict[int, object] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bound[position] = term.value
            elif term.name in bindings:
                bound[position] = bindings[term.name]
        for values in source.candidates(atom.predicate, bound):
            if len(values) != atom.arity:
                continue
            extended = self._unify(atom, values, bindings)
            if extended is None:
                continue
            yield from self._join(body, index + 1, extended, store, delta, delta_position)

    @staticmethod
    def _unify(
        atom: PredicateAtom, values: Tuple, bindings: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        extended = dict(bindings)
        for term, value in zip(atom.terms, values):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                name = term.name
                if name in extended:
                    if extended[name] != value:
                        return None
                else:
                    extended[name] = value
        return extended


def evaluate(program: DatalogProgram) -> FactStore:
    """Semi-naive evaluation of ``program`` (the default strategy)."""
    return DatalogEngine(program).evaluate(semi_naive=True)


def evaluate_naive(program: DatalogProgram) -> FactStore:
    """Naive evaluation of ``program`` (used as a baseline in benchmarks)."""
    return DatalogEngine(program).evaluate(semi_naive=False)
