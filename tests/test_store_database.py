"""Unit tests for the ObjectDatabase facade (repro.store.database)."""

import pytest

from repro import parse_formula, parse_object, parse_rule
from repro.core.builder import obj
from repro.core.errors import SchemaError, StoreError
from repro.schema.types import integer, set_type, string, tuple_type
from repro.store.database import ObjectDatabase
from repro.store.storage import FileStorage


@pytest.fixture
def database(genealogy_small):
    db = ObjectDatabase()
    db.put("family_tree", genealogy_small.family_object)
    db.put("people", parse_object("{[name: peter, age: 25], [name: john, age: 7]}"))
    return db


class TestCrud:
    def test_put_converts_python_values(self, database):
        stored = database.put("config", {"limit": 10, "tags": ["a", "b"]})
        assert stored == obj({"limit": 10, "tags": ["a", "b"]})
        assert database["config"] == stored

    def test_get_and_contains(self, database):
        assert "people" in database
        assert database.get("missing") is None
        with pytest.raises(KeyError):
            database["missing"]

    def test_remove(self, database):
        database.remove("people")
        assert "people" not in database
        database.remove("people")  # idempotent

    def test_names_items_len(self, database):
        assert set(database.names()) == {"family_tree", "people"}
        assert len(database) == 2
        assert dict(database.items())["people"] == database["people"]

    def test_as_object_is_the_paper_database(self, database):
        whole = database.as_object()
        assert whole.get("people") == database["people"]
        assert whole.get("family_tree") == database["family_tree"]

    def test_file_backed_database_round_trips(self, tmp_path, genealogy_small):
        path = str(tmp_path / "db.jsonl")
        db = ObjectDatabase(FileStorage(path))
        db.put("family", genealogy_small.family_object)
        db.close()
        reopened = ObjectDatabase(FileStorage(path))
        assert reopened["family"] == genealogy_small.family_object
        reopened.close()


class TestQueries:
    def test_query_against_one_object(self, database):
        result = database.query("{[name: X, age: 25]}", against="people")
        assert result == parse_object("{[name: peter, age: 25]}")

    def test_query_against_whole_database(self, database):
        result = database.query("[people: {[name: X]}]")
        assert result == parse_object("[people: {[name: peter], [name: john]}]")

    def test_query_accepts_formula_objects(self, database):
        result = database.query(parse_formula("{[age: X]}"), against="people")
        assert len(result) == 2

    def test_find_scans_without_index(self, database):
        matches = database.find(parse_object("{[name: peter]}"))
        assert matches == ["people"]

    def test_find_with_index(self, database, genealogy_small):
        database.create_index("family.name")
        matches = database.find(
            parse_object("[family: {[name: abraham]}]"), path="family.name"
        )
        assert matches == ["family_tree"]
        assert "family.name" in database.indexes()

    def test_index_maintained_on_updates(self, database):
        database.create_index("name")
        database.put("one_person", {"name": "zoe"})
        assert database.find(parse_object("[name: zoe]"), path="name") == ["one_person"]
        database.remove("one_person")
        assert database.find(parse_object("[name: zoe]"), path="name") == []

    def test_drop_index(self, database):
        database.create_index("name")
        database.drop_index("name")
        assert database.indexes() == ()


class TestMissingAgainst:
    """A missing ``against=`` name is a StoreError, not a bare KeyError."""

    def test_query_missing_against(self, database):
        with pytest.raises(StoreError):
            database.query("{[name: X]}", against="missing")

    def test_apply_rules_missing_against(self, database):
        rule = parse_rule("[minors: {X}] :- [people: {[name: X, age: 7]}]")
        with pytest.raises(StoreError):
            database.apply_rules(rule, against="missing")

    def test_close_under_missing_against(self, database):
        rule = parse_rule("[doa: {abraham}].")
        with pytest.raises(StoreError):
            database.close_under(rule, against="missing")


class TestBatchCommit:
    def test_commit_batch_applies_writes_and_deletes_together(self, database):
        database.commit_batch({"people": None, "cities": obj(["austin"])})
        assert "people" not in database
        assert database["cities"] == obj(["austin"])

    def test_commit_batch_maintains_indexes(self, database):
        database.create_index("name")
        database.commit_batch(
            {"zoe": obj({"name": "zoe"}), "ann": obj({"name": "ann"})}
        )
        assert database.find(parse_object("[name: zoe]"), path="name") == ["zoe"]
        database.commit_batch({"zoe": None})
        assert database.find(parse_object("[name: zoe]"), path="name") == []

    def test_version_bumps_once_per_batch(self, database):
        before = database.version
        database.commit_batch({"a": obj(1), "b": obj(2), "c": obj(3)})
        assert database.version == before + 1

    def test_removing_an_absent_name_is_a_no_op_commit(self, database):
        before = database.version
        database.remove("missing")
        assert database.version == before

    def test_compact_requires_a_compactable_engine(self, database):
        with pytest.raises(StoreError):
            database.compact()


class TestRulesAndClosure:
    def test_apply_rules(self, database):
        rule = parse_rule("[minors: {X}] :- [people: {[name: X, age: 7]}]")
        result = database.apply_rules(rule)
        assert result == parse_object("[minors: {john}]")

    def test_close_under_descendants(self, database, genealogy_small):
        rules = [
            parse_rule("[doa: {abraham}]."),
            parse_rule(
                "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
            ),
        ]
        result = database.close_under(rules, against="family_tree", store_as="descendants")
        names = {element.value for element in result.value.get("doa")}
        assert names == set(genealogy_small.expected_descendants)
        assert "descendants" in database


class TestSchemas:
    PEOPLE_SCHEMA = set_type(
        tuple_type({"name": string(), "age": integer()}, required=["name"])
    )

    def test_declared_schema_validates_existing_object(self, database):
        database.declare_schema("people", self.PEOPLE_SCHEMA)
        assert database.schema_of("people") == self.PEOPLE_SCHEMA

    def test_declaring_a_violated_schema_fails(self, database):
        with pytest.raises(SchemaError):
            database.declare_schema("people", set_type(integer()))

    def test_writes_are_checked(self, database):
        database.declare_schema("people", self.PEOPLE_SCHEMA)
        with pytest.raises(SchemaError):
            database.put("people", [{"name": 42}])
        # A conforming write still succeeds.
        database.put("people", [{"name": "zoe", "age": 1}])


class TestUpdates:
    def test_update_path(self, database):
        database.put("doc", {"title": "x", "meta": {"version": 1}})
        database.update("doc", "meta.version", 2)
        assert database["doc"] == obj({"title": "x", "meta": {"version": 2}})

    def test_insert_and_discard_elements(self, database):
        database.insert("people", "", {"name": "zoe", "age": 3})
        assert len(database["people"]) == 3
        database.discard("people", "", {"name": "zoe", "age": 3})
        assert len(database["people"]) == 2

    def test_merge(self, database):
        database.merge("people", [{"name": "ann", "age": 40}])
        assert len(database["people"]) == 3

    def test_merge_creates_missing_objects(self, database):
        database.merge("fresh", {"a": 1})
        assert database["fresh"] == obj({"a": 1})

    def test_update_missing_object_rejected(self, database):
        with pytest.raises(StoreError):
            database.update("missing", "a", 1)
