"""Cooperative query deadlines: the clock behind ``timeout_ms=``.

A :class:`Deadline` is created once per query (``Session.execute(...,
timeout_ms=250)``) and threaded down the pipeline; the places evaluation can
spend unbounded time each call :meth:`Deadline.check` at their natural
yield points:

* the physical executor between plan instance steps
  (:func:`repro.plan.execute.match_plan`) and the streaming cursor per row;
* the engines between fixpoint rounds (:meth:`SemiNaiveEngine._charge`,
  :func:`repro.calculus.fixpoint.close` per iteration).

``check`` raises :class:`~repro.core.errors.QueryTimeout` carrying the
elapsed time and whatever partial context the call site supplies — a plan
rendering for executor timeouts, the engine's partial closure for fixpoint
timeouts — so a timed-out query is diagnosable, not just dead.  The checks
are cooperative: one pathological *single* step can overshoot, but every
loop boundary is covered, which is what bounds real workloads.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

from repro.core.errors import QueryTimeout
from repro.obs.metrics import REGISTRY as _METRICS

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget with a cheap ``expired`` test.

    Create with :meth:`start`; pass down; call :meth:`check` at loop
    boundaries.  The fast path — deadline not reached — is one
    ``perf_counter_ns`` read and a comparison.
    """

    __slots__ = ("timeout_ms", "_start_ns", "_deadline_ns")

    def __init__(self, timeout_ms: float, *, _start_ns: Optional[int] = None):
        self.timeout_ms = timeout_ms
        self._start_ns = time.perf_counter_ns() if _start_ns is None else _start_ns
        self._deadline_ns = self._start_ns + int(timeout_ms * 1e6)

    @classmethod
    def start(cls, timeout_ms: float) -> "Deadline":
        """A deadline ``timeout_ms`` milliseconds from now."""
        return cls(timeout_ms)

    @property
    def expired(self) -> bool:
        return time.perf_counter_ns() >= self._deadline_ns

    def elapsed_ms(self) -> float:
        return (time.perf_counter_ns() - self._start_ns) / 1e6

    def remaining_ms(self) -> float:
        return max(0.0, (self._deadline_ns - time.perf_counter_ns()) / 1e6)

    def check(
        self,
        context: str = "",
        *,
        partial_explain: Union[str, Callable[[], str], None] = None,
        partial=None,
    ) -> None:
        """Raise :class:`QueryTimeout` when the budget is spent.

        ``partial_explain`` may be a string or a zero-argument thunk (so
        call sites never pay for a rendering that is not needed); it must
        describe work already done — it is never allowed to re-execute the
        query.  ``partial`` attaches a partially-computed value (the
        engines' in-flight closure).
        """
        if time.perf_counter_ns() < self._deadline_ns:
            return
        elapsed = self.elapsed_ms()
        _METRICS.counter("session.query_timeouts").inc()
        rendered = partial_explain() if callable(partial_explain) else partial_explain
        where = f" during {context}" if context else ""
        raise QueryTimeout(
            f"query exceeded its {self.timeout_ms:g} ms deadline"
            f"{where} (elapsed {elapsed:.1f} ms)",
            timeout_ms=self.timeout_ms,
            elapsed_ms=elapsed,
            partial_explain=rendered,
            partial=partial,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Deadline {self.timeout_ms:g}ms,"
            f" {self.remaining_ms():.1f}ms remaining>"
        )
