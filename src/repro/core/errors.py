"""Exception hierarchy for the complex-object library.

All library-specific exceptions derive from :class:`ComplexObjectError` so a
caller can catch everything raised by the package with a single handler while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ComplexObjectError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class NotAnObjectError(ComplexObjectError, TypeError):
    """A Python value could not be converted into a complex object.

    Raised by the convenience constructors in :mod:`repro.core.builder` when
    they encounter a value outside the model of Definition 2.1 (for example a
    ``None``, a function, or a dictionary with non-string keys).
    """


class NormalizationError(ComplexObjectError, ValueError):
    """An object violates a structural invariant that normalization assumes.

    This is an internal-consistency error: it indicates a raw object was
    constructed with components that are not complex objects at all.
    """


class DivergenceError(ComplexObjectError, RuntimeError):
    """A fixpoint computation exceeded its resource guards.

    The calculus of Section 4 admits rule sets with no finite closure
    (Example 4.6 of the paper).  :func:`repro.calculus.fixpoint.close` raises
    this exception when the iteration, size, or depth guard trips, and records
    the partially computed object on the ``partial`` attribute so callers can
    inspect how far the computation got.
    """

    def __init__(self, message: str, partial=None, iterations: int = 0):
        super().__init__(message)
        self.partial = partial
        self.iterations = iterations


class ParseError(ComplexObjectError, ValueError):
    """The concrete-syntax parser rejected its input.

    Carries the offending position so error messages can point at the exact
    character where parsing failed.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        location = ""
        if text:
            line = text.count("\n", 0, position) + 1
            column = position - (text.rfind("\n", 0, position) + 1) + 1
            location = f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.text = text
        self.position = position


class ParameterError(ComplexObjectError, ValueError):
    """A parameterized query was executed with missing or unknown parameters.

    Prepared queries (see :mod:`repro.api`) may contain named ``$parameter``
    slots; every slot must be bound at execute time, and binding a name the
    query does not mention is rejected rather than silently ignored.
    """


class UnboundVariableError(ComplexObjectError, KeyError):
    """Instantiation reached a variable with no binding and no default.

    Raised by :func:`repro.calculus.substitution.instantiate` when called
    with ``default=None`` (the strict mode) and the substitution does not
    bind a variable of the target formula.  Derives from :class:`KeyError`
    for compatibility with callers that predate the one-error-surface
    contract of :mod:`repro.api`; carries the variable name on ``name``.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        # KeyError.__str__ would repr the argument; a diagnostic sentence is
        # more useful to callers formatting the one-line error surface.
        return f"unbound variable {self.name}"


class LintError(ComplexObjectError, ValueError):
    """Static analysis rejected a program or query (``lint="strict"``).

    Raised by :meth:`repro.api.Session.prepare` under ``lint="strict"``
    when :mod:`repro.lint` reports error- or warning-severity diagnostics.
    The offending :class:`repro.lint.Diagnostic` records are attached on
    ``diagnostics`` so callers can render or filter them.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class SchemaError(ComplexObjectError, ValueError):
    """An object or formula does not conform to a declared type."""


class AlgebraError(ComplexObjectError, ValueError):
    """An algebra expression is ill-formed or was applied to an unsuitable object."""


class StoreError(ComplexObjectError, RuntimeError):
    """The object store could not complete a request."""


class TransactionError(StoreError):
    """A transaction was used after commit/abort or violated isolation rules."""


class ConflictError(TransactionError):
    """A write-write conflict: the object changed since the caller read it.

    Raised by :meth:`repro.store.ObjectDatabase.commit_batch` when the
    ``expected`` snapshot no longer matches the committed state (first
    committer wins).  Unlike its :class:`TransactionError` parent — which
    also covers terminal misuse such as touching a finished transaction —
    a conflict is *retryable*: re-reading and recomputing is expected to
    succeed, which is exactly what the CAS helpers and
    :meth:`repro.api.Session.transact` do (with bounded, jittered backoff).
    """


class LockTimeout(StoreError):
    """A lock was not acquired within the caller's deadline.

    Raised by :meth:`repro.store.locks.RWLock.acquire_read` /
    :meth:`~repro.store.locks.RWLock.acquire_write` when called with
    ``timeout=`` and the lock stayed contended past the deadline — the
    graceful-degradation alternative to blocking forever.
    """


class QueryTimeout(ComplexObjectError, TimeoutError):
    """A cooperative query deadline expired before evaluation finished.

    Raised by :meth:`repro.api.Session.execute` (and everything downstream:
    the plan executor between instance steps, the engines between fixpoint
    rounds) when called with ``timeout_ms=``.  Carries how far evaluation
    got: ``elapsed_ms``/``timeout_ms``, the ``partial_explain`` rendering of
    the in-flight plan or engine state, and — for closure evaluations — the
    ``partial`` object computed so far.
    """

    def __init__(
        self,
        message: str,
        *,
        timeout_ms=None,
        elapsed_ms=None,
        partial_explain=None,
        partial=None,
    ):
        super().__init__(message)
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms
        self.partial_explain = partial_explain
        self.partial = partial


class InjectedFault(StoreError):
    """A deterministic fault fired by :mod:`repro.fault` (``mode="fail"``).

    Deliberately a :class:`StoreError`: an injected I/O failure must surface
    to callers exactly like the real failure it simulates, so tests exercise
    the same handling paths production errors take.
    """
