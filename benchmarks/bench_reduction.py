"""B3 — cost of reduction vs the amount of redundancy in a set.

Reduction (Definition 3.3 / the "reduced version" of Definition 3.4) removes
the elements of a set that are sub-objects of other elements.  The benchmark
sweeps the fraction of deliberately redundant (dominated) elements in a raw
set of flat tuples and measures :func:`reduce_object`, together with the
``is_reduced`` check that a store would run on ingestion.
"""

import pytest

from repro.core.reduction import is_reduced, reduce_object
from repro.workloads import random_set_with_redundancy

REDUNDANCY = [0.0, 0.3, 0.6, 0.9]
BASE_SIZE = 80


@pytest.mark.benchmark(group="B3-reduce")
@pytest.mark.parametrize("redundancy", REDUNDANCY)
def test_reduce_object(benchmark, redundancy):
    raw = random_set_with_redundancy(
        rng=17, base_size=BASE_SIZE, redundancy=redundancy, attributes=4
    )
    reduced = benchmark(reduce_object, raw)
    # Reduction removes exactly the dominated extras, leaving the base tuples.
    assert len(reduced) == BASE_SIZE


@pytest.mark.benchmark(group="B3-is-reduced")
@pytest.mark.parametrize("redundancy", [0.0, 0.6])
def test_is_reduced_check(benchmark, redundancy):
    raw = random_set_with_redundancy(
        rng=23, base_size=BASE_SIZE, redundancy=redundancy, attributes=4
    )
    result = benchmark(is_reduced, raw)
    assert result == (redundancy == 0.0)
