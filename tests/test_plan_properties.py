"""Property-based equivalence of the plan pipeline with the naive baselines.

The plan pipeline's contract is behavioural identity along every entry point:

* plan-compiled rule evaluation ≡ the naive fixpoint ``close()`` ≡ the
  semi-naive engine, on randomized programs over genealogy and
  part-hierarchy workloads (extending ``test_engine_properties.py``);
* plan-compiled matching ≡ ``match_all`` on randomized formula/database
  pairs, under both semantics and regardless of leaf order;
* the store's pushed-down ``query``/``find`` ≡ interpreting/scanning the
  full snapshot.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import Program, is_subobject, parse_formula, parse_object  # noqa: E402
# The oracle must stay independent of the plan pipeline under test, so it
# is the calculus baseline, not the session-routed repro.interpret shim.
from repro.calculus.interpretation import interpret  # noqa: E402
from repro.calculus.matching import match_all  # noqa: E402
from repro.calculus.fixpoint import close  # noqa: E402
from repro.calculus.rules import Rule, RuleSet  # noqa: E402
from repro.calculus.terms import Constant, formula, var  # noqa: E402
from repro.plan import (  # noqa: E402
    DatabaseStatistics,
    compile_body,
    compile_program,
    match_plan,
    optimize_body,
    optimize_program,
)
from repro.plan.execute import apply_rule_plan  # noqa: E402
from repro.core.objects import Atom, SetObject, TupleObject  # noqa: E402
from repro.store.database import ObjectDatabase  # noqa: E402
from repro.workloads import make_genealogy, make_part_hierarchy  # noqa: E402

_ATTRIBUTE_NAMES = ("a", "b", "c", "d", "r1", "r2", "name")


def _atoms():
    return st.one_of(
        st.integers(min_value=-20, max_value=20).map(Atom),
        st.sampled_from(["john", "mary", "x", "y"]).map(Atom),
    )


def complex_objects(max_depth: int = 3):
    """Reduced complex objects of bounded depth (mirrors tests/conftest.py)."""
    if max_depth <= 1:
        return _atoms()
    children = complex_objects(max_depth - 1)
    tuples = st.dictionaries(
        st.sampled_from(_ATTRIBUTE_NAMES), children, max_size=3
    ).map(TupleObject)
    sets = st.lists(children, max_size=3).map(SetObject)
    return st.one_of(_atoms(), tuples, sets)

DESCENDANTS_RULES = """
[doa: {abraham}].
[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].
"""

# Satellite rules drawn alongside the recursive core: a projection, a
# two-pattern join, and a non-decomposable accumulator that forces the
# full-matching fallback inside a recursive stratum.
EXTRA_RULES = {
    "names": "[names: {Y}] :- [family: {[name: Y]}].",
    "grand": (
        "[grand: {[gp: G, gc: C]}] :-"
        " [family: {[name: G, children: {[name: P]}],"
        " [name: P, children: {[name: C]}]}]."
    ),
    "seen": "[seen: {X}] :- [family: {[name: X]}, doa: S].",
}

BODY_SHAPES = [
    "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
    "[r1: {[name: X]}]",
    "[r1: {X}, r2: {X}]",
    "[r1: {[a: X], [b: Y]}]",
    "[r1: {[a: X, b: X]}]",
    "X",
    "[r1: X, r2: {[c: Y]}]",
]


@st.composite
def genealogy_programs(draw):
    generations = draw(st.integers(min_value=0, max_value=3))
    fanout = draw(st.integers(min_value=1, max_value=3))
    extras = draw(st.sets(st.sampled_from(sorted(EXTRA_RULES))))
    tree = make_genealogy(generations, fanout)
    source = DESCENDANTS_RULES + "".join(EXTRA_RULES[name] for name in sorted(extras))
    return Program.from_source(source, database=tree.family_object)


@st.composite
def hierarchy_programs(draw):
    levels = draw(st.integers(min_value=0, max_value=3))
    children = draw(st.integers(min_value=1, max_value=2))
    assembly = make_part_hierarchy(levels, children, rng=draw(st.integers(0, 99)))
    rules = [
        Rule(formula({"all": [Constant(assembly.nested_object)]})),
        Rule(
            formula({"all": [var("X")]}),
            formula({"all": [formula({"components": [var("X")]})]}),
        ),
    ]
    return Program(rules)


def assert_all_routes_agree(program):
    """naive close() ≡ plan-compiled naive engine ≡ semi-naive engine."""
    baseline = close(program.seed(), program.rules)
    naive = program.evaluate(engine="naive")
    semi = program.evaluate(engine="seminaive")
    assert naive.value == baseline.value
    assert semi.value == baseline.value
    assert naive.iterations == baseline.iterations
    assert naive.converged and semi.converged and baseline.converged


@settings(max_examples=20, deadline=None)
@given(genealogy_programs())
def test_plan_compiled_evaluation_matches_close_on_genealogies(program):
    assert_all_routes_agree(program)


@settings(max_examples=12, deadline=None)
@given(hierarchy_programs())
def test_plan_compiled_evaluation_matches_close_on_hierarchies(program):
    assert_all_routes_agree(program)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(BODY_SHAPES),
    complex_objects(max_depth=3),
    st.booleans(),
)
def test_match_plan_equals_match_all_on_random_objects(body_text, database, allow):
    body = parse_formula(body_text)
    plan = optimize_body(compile_body(body), DatabaseStatistics.collect(database))
    expected = set(match_all(body, database, allow_bottom=allow))
    assert set(match_plan(plan, database, allow_bottom=allow)) == expected


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(BODY_SHAPES), complex_objects(max_depth=3))
def test_rule_application_through_plans_matches_rule_apply(body_text, database):
    body = parse_formula(body_text)
    if not body.variables():
        return
    head = formula({"out": [var(sorted(body.variables())[0])]})
    rule = Rule(head, body)
    program = optimize_program(compile_program(RuleSet([rule])))
    (node,) = program.rule_nodes()
    assert apply_rule_plan(node, database) == rule.apply(database)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=8,
    ),
    st.sampled_from(
        [
            "[alpha: [tag: {t0}]]",
            "[alpha: [tag: {T}], beta: [num: N]]",
            "[gamma: [num: 3]]",
            "[delta: [tag: {t9}]]",
        ]
    ),
)
def test_store_query_pushdown_equals_snapshot_interpretation(rows, query_text):
    database = ObjectDatabase()
    for name, tag, num in rows:
        database.put(name, parse_object(f"[tag: {{t{tag}}}, num: {num}]"))
    database.create_index("tag")
    query = parse_formula(query_text)
    assert database.query(query) == interpret(query, database.as_object())


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=4),
)
def test_store_find_prefilter_equals_full_scan(rows, probe):
    database = ObjectDatabase()
    for position, (num, tag) in enumerate(rows):
        database.put(
            f"obj{position}", parse_object(f"[tag: {{t{tag}}}, num: {num}]")
        )
    pattern = parse_object(f"[tag: {{t{probe}}}]")
    scanned = database.find(pattern)
    database.create_index("tag")
    prefiltered = database.find(pattern)
    assert prefiltered == scanned
    expected = sorted(
        name for name in database.names() if is_subobject(pattern, database[name])
    )
    assert prefiltered == expected
