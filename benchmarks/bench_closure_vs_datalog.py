"""B7 — recursive closure: calculus (Example 4.5) vs Datalog naive vs semi-naive.

The descendants query is evaluated four ways on the same generated family
trees: the complex-object closure of the paper's program under the naive and
the semi-naive indexed engine (:mod:`repro.engine`), and the flat Datalog
program under naive and semi-naive evaluation.  The sweep varies the number of
generations (recursion depth) and the fan-out (database size).
"""

from functools import lru_cache

import pytest

from repro import Program
from repro.datalog import DatalogEngine
from repro.workloads import make_genealogy

SWEEP = [(3, 2), (5, 2), (4, 3)]

DESCENDANTS_SOURCE = """
[doa: {abraham}].
[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].
"""


@lru_cache(maxsize=None)
def _tree(generations: int, fanout: int):
    return make_genealogy(generations, fanout)


@pytest.mark.benchmark(group="B7-closure")
@pytest.mark.parametrize("generations,fanout", SWEEP)
def test_calculus_closure(benchmark, generations, fanout):
    tree = _tree(generations, fanout)
    program = Program.from_source(DESCENDANTS_SOURCE, database=tree.family_object)

    def run():
        return program.evaluate().value

    closure = benchmark(run)
    assert len(closure.get("doa")) == len(tree.expected_descendants)


@pytest.mark.benchmark(group="B7-closure")
@pytest.mark.parametrize("generations,fanout", SWEEP)
def test_calculus_closure_seminaive(benchmark, generations, fanout):
    tree = _tree(generations, fanout)
    program = Program.from_source(DESCENDANTS_SOURCE, database=tree.family_object)

    def run():
        return program.evaluate(engine="seminaive").value

    closure = benchmark(run)
    assert len(closure.get("doa")) == len(tree.expected_descendants)


@pytest.mark.benchmark(group="B7-closure")
@pytest.mark.parametrize("generations,fanout", SWEEP)
def test_datalog_semi_naive(benchmark, generations, fanout):
    tree = _tree(generations, fanout)
    engine = DatalogEngine(tree.datalog_program)
    result = benchmark(lambda: engine.query("doa", semi_naive=True))
    assert len(result) == len(tree.expected_descendants)


@pytest.mark.benchmark(group="B7-closure")
@pytest.mark.parametrize("generations,fanout", SWEEP)
def test_datalog_naive(benchmark, generations, fanout):
    tree = _tree(generations, fanout)
    engine = DatalogEngine(tree.datalog_program)
    result = benchmark(lambda: engine.query("doa", semi_naive=False))
    assert len(result) == len(tree.expected_descendants)
