"""Tracing: nested, timed spans with a per-query trace id.

One :class:`Tracer` serves the whole process.  Tracing is **off by default**
and the disabled path is engineered to cost (almost) nothing: every
instrumentation site calls the module-level :func:`span`, which — when no
tracer is installed — returns the shared :data:`NULL_SPAN` singleton whose
``__enter__``/``__exit__``/``set`` are empty methods.  No span object is
allocated, no clock is read, no attribute dict is built.  Sites that want to
attach non-trivial attributes guard the computation on ``span.enabled`` so
the disabled path does not even evaluate the attribute expressions::

    from repro.obs import trace as _trace

    with _trace.span("store.commit_batch") as sp:
        ...                         # the traced work
        if sp.enabled:
            sp.set(writes=len(effective))

The enforced-overhead benchmark (``benchmarks/run_obs_benchmarks.py``) pins
this contract: a workload run with tracing disabled must stay within 5% of
the same workload with the hooks monkeypatched to literal no-ops.

When a tracer is installed (:func:`enable`), spans nest through a
thread-local stack: a span started while another is active becomes its child
and inherits its ``trace_id``; a span started with no active parent opens a
**new trace** (a fresh ``trace_id``) and, when it exits, the finished tree is
appended to the tracer's bounded ring of completed traces.  The per-query
trace id is exactly this: :meth:`repro.api.Session.execute` opens a root span
per query, so everything the query touches — plan binding, store access-path
decisions, WAL appends, engine rounds — hangs off one id.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from itertools import count
from typing import Dict, List, Optional

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_tracer",
    "disable",
    "enable",
    "render_span",
    "set_tracer",
    "span",
]


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    enabled = False
    name = trace_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpan>"


#: The singleton no-op span; identity-checkable in tests.
NULL_SPAN = _NullSpan()


class Span:
    """One timed operation: a node in a trace tree.

    Spans are context managers; entering starts the clock and pushes the span
    onto the tracer's thread-local stack (so spans opened inside become
    children), exiting stops the clock and pops it.  ``attrs`` carries
    arbitrary key → value annotations (:meth:`set`); ``children`` the nested
    spans in start order.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "children",
        "start_ns",
        "duration_ns",
        "_tracer",
    )
    enabled = True

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[dict] = None):
        self._tracer = tracer
        self.name = name
        self.trace_id: Optional[str] = None
        self.span_id: int = 0
        self.parent_id: Optional[int] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.start_ns = 0
        self.duration_ns: Optional[int] = None

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attribute annotations on this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def as_dict(self) -> dict:
        """A JSON-friendly rendering of the span subtree."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        took = "..." if self.duration_ns is None else f"{self.duration_ns}ns"
        return f"<Span {self.name} trace={self.trace_id} {took} {self.attrs}>"


class Tracer:
    """Collects spans into per-trace trees; one instance traces the process.

    Thread-safe: each thread nests spans through its own stack, finished
    traces land in one lock-guarded bounded ring (``max_traces``, oldest
    evicted first) so a long-lived traced process cannot grow without bound.
    """

    enabled = True

    def __init__(self, *, max_traces: int = 128):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: "deque[Span]" = deque(maxlen=max_traces)
        self._trace_ids = count(1)
        self._span_ids = count(1)

    # -- span lifecycle -----------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """A new span, ready to be entered (``with tracer.span(...) as sp``)."""
        return Span(self, name, attrs or None)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._span_ids)
        if stack:
            parent = stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            span.trace_id = f"t-{next(self._trace_ids):06d}"
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Exits are well-nested by construction (spans are context managers),
        # but a generator held across spans could in principle unwind out of
        # order; popping down to the span keeps the stack consistent.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span.parent_id is None:
            with self._lock:
                self._finished.append(span)

    # -- introspection ------------------------------------------------------------------
    def active(self) -> Optional[Span]:
        """The innermost span currently open on this thread (or ``None``)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def traces(self) -> List[Span]:
        """The finished root spans, oldest first (a copy)."""
        with self._lock:
            return list(self._finished)

    def find(self, trace_id: str) -> Optional[Span]:
        """The finished trace with the given id, or ``None``."""
        with self._lock:
            for root in reversed(self._finished):
                if root.trace_id == trace_id:
                    return root
        return None

    def clear(self) -> None:
        """Drop every finished trace (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer {len(self._finished)} finished traces>"


#: The installed tracer; ``None`` means tracing is disabled (the default).
_tracer: Optional[Tracer] = None


def span(name: str, **attrs):
    """A span under the installed tracer — or :data:`NULL_SPAN` when disabled.

    This is the one hook every instrumentation site calls; keep the disabled
    path to a global read and a ``None`` check.
    """
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (``None`` disables tracing); returns the previous one."""
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def enable(*, max_traces: int = 128) -> Tracer:
    """Turn tracing on (idempotent) and return the installed tracer."""
    global _tracer
    if _tracer is None:
        _tracer = Tracer(max_traces=max_traces)
    return _tracer


def disable() -> None:
    """Turn tracing off; subsequent :func:`span` calls are no-ops again."""
    set_tracer(None)


def format_ns(ns: Optional[int]) -> str:
    """Human-scale rendering of a nanosecond duration (``812ns``…``1.24s``)."""
    if ns is None:
        return "?"
    if ns < 1_000:
        return f"{ns}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.1f}µs"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.1f}ms"
    return f"{ns / 1_000_000_000:.2f}s"


def render_span(span: Span, *, indent: str = "") -> str:
    """An indented text tree of one span and its children, with durations."""
    attrs = ""
    if span.attrs:
        attrs = "  " + " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
    lines = [f"{indent}{span.name}  [{format_ns(span.duration_ns)}]{attrs}"]
    for child in span.children:
        lines.append(render_span(child, indent=indent + "  "))
    return "\n".join(lines)
