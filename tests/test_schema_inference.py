"""Unit tests for type inference (repro.schema.inference)."""

from repro import parse_object
from repro.core.builder import obj
from repro.core.objects import BOTTOM, TOP
from repro.schema.check import conforms
from repro.schema.inference import infer_type, join_types
from repro.schema.types import (
    AnyType,
    AtomType,
    EmptyType,
    SetType,
    TupleType,
    UnionType,
    integer,
    set_type,
    string,
    tuple_type,
    union_type,
)


class TestInferType:
    def test_atoms(self):
        assert infer_type(obj(1)) == integer()
        assert infer_type(obj("x")) == string()
        assert infer_type(obj(True)) == AtomType("bool")
        assert infer_type(obj(1.5)) == AtomType("float")

    def test_specials(self):
        assert infer_type(BOTTOM) == EmptyType()
        assert infer_type(TOP) == AnyType()

    def test_flat_tuple(self):
        inferred = infer_type(obj({"name": "peter", "age": 25}))
        assert inferred == tuple_type(
            {"name": string(), "age": integer()}, required=["age", "name"]
        )

    def test_homogeneous_set(self):
        assert infer_type(obj([1, 2, 3])) == set_type(integer())

    def test_empty_set(self):
        assert infer_type(obj([])) == set_type(EmptyType())

    def test_heterogeneous_relation_merges_tuple_types(self):
        value = parse_object("{[name: peter, age: 25], [name: john, address: austin]}")
        inferred = infer_type(value)
        assert isinstance(inferred, SetType)
        element = inferred.element
        assert isinstance(element, TupleType)
        assert set(element.attribute_names()) == {"name", "age", "address"}
        # Only the attribute shared by every element stays required.
        assert element.required == ("name",)

    def test_inferred_type_always_accepts_the_object(self, relational_db_object):
        for value in (
            relational_db_object,
            parse_object("{1, [a: 2], {3}}"),
            obj({"a": [1, "two", True]}),
        ):
            assert conforms(value, infer_type(value))


class TestJoinTypes:
    def test_identity_and_neutral_elements(self):
        assert join_types(integer(), integer()) == integer()
        assert join_types(EmptyType(), string()) == string()
        assert join_types(string(), EmptyType()) == string()

    def test_any_absorbs(self):
        assert join_types(AnyType(), integer()) == AnyType()

    def test_atoms_of_different_sorts_join_to_generic_atom(self):
        assert join_types(integer(), string()) == AtomType(None)

    def test_tuple_join_makes_one_sided_fields_optional(self):
        left = tuple_type({"a": integer(), "b": string()}, required=["a", "b"])
        right = tuple_type({"a": integer(), "c": string()}, required=["a", "c"])
        joined = join_types(left, right)
        assert set(joined.attribute_names()) == {"a", "b", "c"}
        assert joined.required == ("a",)

    def test_set_join_joins_elements(self):
        assert join_types(set_type(integer()), set_type(string())) == set_type(AtomType(None))

    def test_incompatible_kinds_fall_back_to_union(self):
        joined = join_types(integer(), set_type(integer()))
        assert isinstance(joined, UnionType)

    def test_union_absorbs_more_alternatives(self):
        base = union_type(integer(), set_type(integer()))
        joined = join_types(base, string())
        assert isinstance(joined, UnionType)
        assert len(joined.alternatives) == 3
