"""Property-based crash-recovery guarantees for the write-ahead log.

The satellite contract, pinned over generated workloads:

* **truncation** — cutting a committed WAL at *any* byte offset and
  recovering yields exactly the longest intact prefix of commits (never a
  partial batch, never a reordering, never an invented object);
* **in-place damage** — XOR-flipping any byte of the log demotes recovery
  to the prefix before the damaged record: CRC-32 catches every single-byte
  flip, and the quarantine default preserves prefix consistency.

Atom values are restricted to ints and strings: float atoms canonicalize
through ``repr`` and are orthogonal to the framing guarantees under test.
"""

import os
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.builder import obj  # noqa: E402
from repro.store.storage import FileStorage  # noqa: E402


_NAMES = st.sampled_from(["a", "b", "c", "d"])
_VALUES = st.one_of(
    st.integers(min_value=-999, max_value=999),
    st.text(alphabet="xyz", min_size=0, max_size=4),
).map(obj)
# ``None`` deletes the name; lists/sets exercise nested encodings.
_CHANGES = st.one_of(
    st.none(),
    _VALUES,
    st.lists(st.integers(min_value=0, max_value=9), max_size=3).map(obj),
)
_BATCHES = st.lists(
    st.dictionaries(_NAMES, _CHANGES, min_size=1, max_size=3),
    min_size=1,
    max_size=6,
)


def _write_workload(path, batches):
    """Apply the batches; return the expected state after each commit."""
    states = [{}]
    storage = FileStorage(path)
    try:
        for batch in batches:
            storage.apply_batch(batch)
            state = dict(states[-1])
            for name, value in batch.items():
                if value is None:
                    state.pop(name, None)
                else:
                    state[name] = value
            states.append(state)
    finally:
        storage.close()
    return states


def _record_ends(raw):
    """Exclusive end offset of each newline-terminated record."""
    ends = []
    position = 0
    while True:
        newline = raw.find(b"\n", position)
        if newline < 0:
            return ends
        position = newline + 1
        ends.append(position)


def _recovered(path):
    storage = FileStorage(path)
    try:
        return dict(storage.items())
    finally:
        storage.close()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_truncation_recovers_longest_intact_prefix(data):
    batches = data.draw(_BATCHES)
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as scratch:
        path = os.path.join(scratch, "db.wal")
        states = _write_workload(path, batches)
        with open(path, "rb") as handle:
            raw = handle.read()
        offset = data.draw(st.integers(min_value=0, max_value=len(raw)))
        with open(path, "wb") as handle:
            handle.write(raw[:offset])
        # The longest prefix of whole records inside ``offset`` bytes.
        intact = sum(1 for end in _record_ends(raw) if end <= offset)
        assert _recovered(path) == states[intact]


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_byte_flip_recovers_prefix_before_the_damage(data):
    batches = data.draw(_BATCHES)
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as scratch:
        path = os.path.join(scratch, "db.wal")
        states = _write_workload(path, batches)
        with open(path, "rb") as handle:
            original = handle.read()
        position = data.draw(st.integers(min_value=0, max_value=len(original) - 1))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        damaged = bytearray(original)
        damaged[position] ^= mask
        with open(path, "wb") as handle:
            handle.write(bytes(damaged))
        # The record whose bytes include the flip is lost, along with
        # everything after it — whether the flip corrupts the record body,
        # splits it with an injected newline, or (for the final record's own
        # newline) turns the tail torn.  Records strictly before the flip
        # survive: their count is the number of record ends <= position.
        intact = sum(1 for end in _record_ends(original) if end <= position)
        assert _recovered(path) == states[intact]


@settings(max_examples=20, deadline=None)
@given(_BATCHES)
def test_undamaged_log_recovers_exactly(batches):
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as scratch:
        path = os.path.join(scratch, "db.wal")
        states = _write_workload(path, batches)
        recovered = _recovered(path)
        assert recovered == states[-1]
        # And recovery is idempotent: reopening changes nothing.
        assert _recovered(path) == recovered
