"""Property: observability must never change what a query computes.

Tracing is instrumentation, not semantics — the same query over the same
database must return the same answer whether tracing is disabled (the no-op
span path) or enabled (real spans, real metrics).  Pinned over generated
objects and body shapes, for both the streaming and materializing terminals.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import Session, parse_formula  # noqa: E402
from repro.core.lattice import union_all  # noqa: E402
from repro.core.objects import Atom, SetObject, TupleObject  # noqa: E402
from repro.obs import trace  # noqa: E402

_ATTRIBUTE_NAMES = ("a", "b", "c", "r1", "r2", "name")

BODY_SHAPES = [
    "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
    "[r1: {[name: X]}]",
    "[r1: {X}, r2: {X}]",
    "[r1: {[a: X], [b: Y]}]",
    "X",
]


def _atoms():
    return st.one_of(
        st.integers(min_value=-20, max_value=20).map(Atom),
        st.sampled_from(["john", "mary", "x", "y"]).map(Atom),
    )


def complex_objects(max_depth: int = 3):
    if max_depth <= 1:
        return _atoms()
    children = complex_objects(max_depth - 1)
    tuples = st.dictionaries(
        st.sampled_from(_ATTRIBUTE_NAMES), children, max_size=3
    ).map(TupleObject)
    sets = st.lists(children, max_size=3).map(SetObject)
    return st.one_of(_atoms(), tuples, sets)


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    trace.disable()


@settings(deadline=None)
@given(database=complex_objects(), shape=st.sampled_from(BODY_SHAPES))
def test_traced_query_equals_untraced_query(database, shape):
    body = parse_formula(shape)

    trace.disable()
    untraced = Session.over_object(database).query(body)

    trace.enable()
    try:
        traced = Session.over_object(database).query(body)
        streamed = union_all(list(Session.over_object(database).execute(body)))
    finally:
        trace.disable()

    assert traced == untraced
    assert streamed == untraced
