"""The :class:`ObjectDatabase` facade.

An object database is a named collection of complex objects on top of a
storage engine, with:

* calculus queries: :meth:`ObjectDatabase.query` interprets a formula against
  one stored object (or against the whole database seen as a single tuple
  object, exactly the paper's "the entire database can be modeled by a single
  object"), and :meth:`ObjectDatabase.apply_rules` / :meth:`close_under`
  evaluate rules and closures in place;
* pattern search across objects: :meth:`find` returns the names of the stored
  objects of which a pattern is a sub-object, using path indexes when one
  covers the pattern;
* schema enforcement: a type per name (optional) checked on every write;
* functional updates with :mod:`repro.store.updates`, and multi-statement
  transactions with :mod:`repro.store.transactions`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import SchemaError, StoreError
from repro.core.objects import BOTTOM, ComplexObject, SetObject, TupleObject
from repro.core.order import is_subobject
from repro.calculus.fixpoint import ClosureResult, close
from repro.calculus.interpretation import interpret
from repro.calculus.rules import Rule, RuleSet
from repro.calculus.terms import Formula
from repro.schema.check import check_object
from repro.schema.types import SchemaType
from repro.store.index import PathIndex
from repro.store.paths import Path
from repro.store.storage import MemoryStorage, StorageEngine
from repro.store.transactions import Transaction
from repro.store.updates import assign_path, insert_element, merge_object, remove_element

__all__ = ["ObjectDatabase"]


class ObjectDatabase:
    """A named collection of complex objects with queries, indexes and updates."""

    def __init__(self, storage: Optional[StorageEngine] = None):
        self._storage = storage if storage is not None else MemoryStorage()
        self._indexes: Dict[str, PathIndex] = {}
        self._schemas: Dict[str, SchemaType] = {}

    # -- basic CRUD -----------------------------------------------------------------
    def put(self, name: str, value) -> ComplexObject:
        """Store an object (plain Python values are converted) under ``name``."""
        from repro.core.builder import obj

        converted = obj(value)
        schema = self._schemas.get(name)
        if schema is not None:
            issues = check_object(converted, schema)
            if issues:
                raise SchemaError(
                    f"object for {name!r} violates its schema: {issues[0]}"
                )
        self._storage.write(name, converted)
        for index in self._indexes.values():
            index.add(name, converted)
        return converted

    def get(self, name: str, default=None) -> Optional[ComplexObject]:
        """Return the object stored under ``name`` (or ``default``)."""
        value = self._storage.read(name)
        return default if value is None else value

    def __getitem__(self, name: str) -> ComplexObject:
        value = self._storage.read(name)
        if value is None:
            raise KeyError(name)
        return value

    def __contains__(self, name: str) -> bool:
        return self._storage.read(name) is not None

    def remove(self, name: str) -> None:
        """Delete the object stored under ``name`` (no error when absent)."""
        self._storage.delete(name)
        for index in self._indexes.values():
            index.remove(name)

    def names(self) -> Tuple[str, ...]:
        """The stored names, sorted."""
        return self._storage.names()

    def items(self) -> Iterator[Tuple[str, ComplexObject]]:
        """Iterate over ``(name, object)`` pairs."""
        return self._storage.items()

    def __len__(self) -> int:
        return len(self._storage.names())

    # -- the whole database as one object ----------------------------------------------
    def as_object(self) -> ComplexObject:
        """The entire database as a single tuple object (Section 4 of the paper)."""
        return TupleObject({name: value for name, value in self.items()})

    # -- schemas -------------------------------------------------------------------------
    def declare_schema(self, name: str, schema: SchemaType) -> None:
        """Attach a schema to ``name``; the current and future values must conform."""
        current = self.get(name)
        if current is not None:
            issues = check_object(current, schema)
            if issues:
                raise SchemaError(
                    f"existing object for {name!r} violates the declared schema: {issues[0]}"
                )
        self._schemas[name] = schema

    def schema_of(self, name: str) -> Optional[SchemaType]:
        """The declared schema of ``name`` (or ``None``)."""
        return self._schemas.get(name)

    # -- indexes --------------------------------------------------------------------------
    def create_index(self, path: Union[Path, str]) -> PathIndex:
        """Create (or return) a path index and populate it from the stored objects."""
        key = str(path if isinstance(path, Path) else Path(path))
        if key not in self._indexes:
            index = PathIndex(key)
            index.rebuild(self.items())
            self._indexes[key] = index
        return self._indexes[key]

    def drop_index(self, path: Union[Path, str]) -> None:
        """Remove a path index (no error when absent)."""
        key = str(path if isinstance(path, Path) else Path(path))
        self._indexes.pop(key, None)

    def indexes(self) -> Tuple[str, ...]:
        """The paths currently indexed."""
        return tuple(sorted(self._indexes))

    # -- queries --------------------------------------------------------------------------
    def query(
        self,
        formula,
        *,
        against: Optional[str] = None,
        allow_bottom: bool = False,
    ) -> ComplexObject:
        """Interpret a formula (Definition 4.2) against one object or the whole database.

        ``formula`` may be a :class:`~repro.calculus.terms.Formula` or source
        text in the paper's notation.  With ``against=None`` the formula is
        interpreted against :meth:`as_object`.
        """
        parsed = self._as_formula(formula)
        target = self.as_object() if against is None else self[against]
        return interpret(parsed, target, allow_bottom=allow_bottom)

    def find(
        self, pattern: ComplexObject, *, path: Optional[Union[Path, str]] = None
    ) -> List[str]:
        """Names of the stored objects of which ``pattern`` is a sub-object.

        When ``path`` names an index and ``pattern`` pins a value at that path,
        the index narrows the candidates before the sub-object check; otherwise
        every stored object is scanned.
        """
        candidates: Optional[Sequence[str]] = None
        if path is not None:
            key = str(path if isinstance(path, Path) else Path(path))
            index = self._indexes.get(key)
            if index is not None:
                from repro.store.paths import get_path

                located = get_path(pattern, key)
                values = located.elements if isinstance(located, SetObject) else [located]
                gathered: List[str] = []
                for value in values:
                    if value.is_bottom:
                        continue
                    gathered.extend(index.lookup(value))
                candidates = sorted(set(gathered))
        if candidates is None:
            candidates = self.names()
        return [
            name
            for name in candidates
            if (stored := self.get(name)) is not None and is_subobject(pattern, stored)
        ]

    # -- rules ----------------------------------------------------------------------------
    def apply_rules(
        self,
        rules: Union[Rule, RuleSet, Sequence[Rule]],
        *,
        against: Optional[str] = None,
        allow_bottom: bool = False,
    ) -> ComplexObject:
        """Apply rules once (Definition 4.4) to one object or to the whole database."""
        ruleset = rules if isinstance(rules, RuleSet) else RuleSet(
            [rules] if isinstance(rules, Rule) else rules
        )
        target = self.as_object() if against is None else self[against]
        return ruleset.apply(target, allow_bottom=allow_bottom)

    def close_under(
        self,
        rules: Union[Rule, RuleSet, Sequence[Rule]],
        *,
        against: Optional[str] = None,
        store_as: Optional[str] = None,
        **guards,
    ) -> ClosureResult:
        """Compute the closure (Definition 4.6) and optionally store the result."""
        target = self.as_object() if against is None else self[against]
        result = close(target, rules, **guards)
        if store_as is not None:
            self.put(store_as, result.value)
        return result

    # -- updates ------------------------------------------------------------------------
    def update(self, name: str, path: Union[Path, str], value) -> ComplexObject:
        """Assign ``value`` at ``path`` inside the object stored under ``name``."""
        from repro.core.builder import obj

        current = self._require(name)
        return self.put(name, assign_path(current, path, obj(value)))

    def insert(self, name: str, path: Union[Path, str], element) -> ComplexObject:
        """Insert ``element`` into the set at ``path`` inside ``name``."""
        from repro.core.builder import obj

        current = self._require(name)
        return self.put(name, insert_element(current, path, obj(element)))

    def discard(self, name: str, path: Union[Path, str], element) -> ComplexObject:
        """Remove ``element`` from the set at ``path`` inside ``name``."""
        from repro.core.builder import obj

        current = self._require(name)
        return self.put(name, remove_element(current, path, obj(element)))

    def merge(self, name: str, other) -> ComplexObject:
        """Lattice-union ``other`` into the object stored under ``name``."""
        from repro.core.builder import obj

        current = self.get(name, default=BOTTOM)
        return self.put(name, merge_object(current, obj(other)))

    # -- transactions ----------------------------------------------------------------------
    def transaction(self) -> Transaction:
        """Start a buffered transaction against this database."""
        return Transaction(self)

    # -- helpers ---------------------------------------------------------------------------
    def _require(self, name: str) -> ComplexObject:
        value = self.get(name)
        if value is None:
            raise StoreError(f"no object stored under {name!r}")
        return value

    @staticmethod
    def _as_formula(formula) -> Formula:
        if isinstance(formula, Formula):
            return formula
        if isinstance(formula, str):
            from repro.parser import parse_formula

            return parse_formula(formula)
        from repro.calculus.terms import formula as to_formula

        return to_formula(formula)

    def close(self) -> None:
        """Close the underlying storage engine and drop the object memo caches.

        The order/lattice caches key on intern ids and never pin objects, but
        their *values* (lattice results) and entries accumulate across a
        store's lifetime; teardown is the natural point to release them.
        """
        self._storage.close()
        from repro.core.intern import clear_object_caches

        clear_object_caches()

    def __repr__(self) -> str:
        return f"<ObjectDatabase {len(self)} objects, {len(self._indexes)} indexes>"
