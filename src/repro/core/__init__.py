"""Core complex-object data model of Bancilhon & Khoshafian.

This package implements Sections 2 and 3 of the paper:

* :mod:`repro.core.objects` -- the object constructors (atoms, TOP, BOTTOM,
  tuples, sets) and normalization (Definition 2.1 / 2.2 conventions).
* :mod:`repro.core.depth` -- the depth measure used in every proof
  (Definition 3.2).
* :mod:`repro.core.reduction` -- reduced objects (Definition 3.3).
* :mod:`repro.core.order` -- the sub-object partial order (Definition 3.1,
  Theorems 3.1--3.3).
* :mod:`repro.core.lattice` -- union and intersection, i.e. least upper bound
  and greatest lower bound (Definitions 3.4--3.5, Theorems 3.4--3.6).
* :mod:`repro.core.enumeration` -- exhaustive enumeration of the (finite)
  sub-object lattice of a finite object, used by tests and the brute-force
  calculus oracle.
* :mod:`repro.core.intern` -- hash-consing of normalized objects: O(1)
  equality/hashing and the id-keyed memo caches behind the order and lattice
  operations.
"""

from repro.core.atoms import AtomValue, is_atom_value
from repro.core.builder import atom, obj, set_of, tup
from repro.core.depth import depth
from repro.core.enumeration import all_subobjects, count_subobjects
from repro.core.equality import objects_equal
from repro.core.errors import (
    ComplexObjectError,
    DivergenceError,
    NormalizationError,
    NotAnObjectError,
)
from repro.core.intern import (
    clear_object_caches,
    fingerprint,
    intern_id,
    intern_stats,
    is_interned,
)
from repro.core.lattice import (
    intersection,
    intersection_all,
    is_lattice_consistent,
    union,
    union_all,
)
from repro.core.objects import (
    BOTTOM,
    TOP,
    Atom,
    Bottom,
    ComplexObject,
    SetObject,
    Top,
    TupleObject,
)
from repro.core.order import (
    compare,
    is_strict_subobject,
    is_subobject,
    maximal_elements,
    minimal_elements,
    subobject,
)
from repro.core.reduction import is_reduced, reduce_object

__all__ = [
    "Atom",
    "AtomValue",
    "BOTTOM",
    "Bottom",
    "ComplexObject",
    "ComplexObjectError",
    "DivergenceError",
    "NormalizationError",
    "NotAnObjectError",
    "SetObject",
    "TOP",
    "Top",
    "TupleObject",
    "all_subobjects",
    "atom",
    "clear_object_caches",
    "compare",
    "count_subobjects",
    "depth",
    "fingerprint",
    "intern_id",
    "intern_stats",
    "is_interned",
    "intersection",
    "intersection_all",
    "is_atom_value",
    "is_lattice_consistent",
    "is_reduced",
    "is_strict_subobject",
    "is_subobject",
    "maximal_elements",
    "minimal_elements",
    "obj",
    "objects_equal",
    "reduce_object",
    "set_of",
    "subobject",
    "tup",
    "union",
    "union_all",
]
