"""Object equality (Definition 2.2 of the paper) and normalization.

Definition 2.2 states:

(i)   two atomic objects are equal iff they are the same;
(ii)  two tuple objects without ⊤-valued attributes are equal iff they take
      equal values on every attribute (an absent attribute reads as ⊥, so a
      ⊥-valued attribute is the same as an absent one);
(iii) two set objects with non-⊤ elements are equal iff their elements are
      pairwise equal, and adding or removing ⊥ does not change a set;
(iv)  every object containing ⊤ equals ⊤.

The default constructors in :mod:`repro.core.objects` already apply the ⊥/⊤
conventions, so for objects built through them Python ``==`` *is* paper
equality.  The functions here exist for *raw* objects (built with
``TupleObject.raw`` / ``SetObject.raw``): :func:`normalize` applies the
conventions recursively and :func:`objects_equal` compares the normal forms.

Note that :func:`normalize` deliberately does **not** reduce sets: Definition
2.2 distinguishes ``{[a: 1], [a: 1, b: 2]}`` from ``{[a: 1, b: 2]}`` even
though the two are mutual sub-objects; reduction is a separate restriction on
the object space (Definition 3.3, :mod:`repro.core.reduction`).
"""

from __future__ import annotations

from repro.core.objects import (
    BOTTOM,
    TOP,
    Atom,
    Bottom,
    ComplexObject,
    SetObject,
    Top,
    TupleObject,
)

__all__ = ["normalize", "objects_equal", "contains_top", "contains_bottom"]


def normalize(value: ComplexObject) -> ComplexObject:
    """Return the normal form of ``value`` under the ⊥/⊤ conventions.

    ⊥-valued attributes and ⊥ elements are removed, and any object containing
    ⊤ collapses to ⊤.  The result is structurally canonical, so two objects are
    equal in the sense of Definition 2.2 exactly when their normal forms
    compare equal with ``==``.
    """
    if isinstance(value, (Atom, Top, Bottom)):
        return value
    if isinstance(value, TupleObject):
        attributes = {}
        for name, item in value.items():
            normalized = normalize(item)
            if normalized.is_top:
                return TOP
            if normalized.is_bottom:
                continue
            attributes[name] = normalized
        return TupleObject.raw(attributes)
    if isinstance(value, SetObject):
        elements = []
        for element in value:
            normalized = normalize(element)
            if normalized.is_top:
                return TOP
            if normalized.is_bottom:
                continue
            elements.append(normalized)
        return SetObject.raw(elements)
    raise TypeError(f"not a complex object: {value!r}")


def objects_equal(left: ComplexObject, right: ComplexObject) -> bool:
    """Equality in the sense of Definition 2.2, valid for raw objects too."""
    return normalize(left) == normalize(right)


def contains_top(value: ComplexObject) -> bool:
    """Return ``True`` when ``value`` contains ⊤ anywhere (so it equals ⊤)."""
    if value.is_top:
        return True
    if isinstance(value, TupleObject):
        return any(contains_top(item) for _, item in value.items())
    if isinstance(value, SetObject):
        return any(contains_top(element) for element in value)
    return False


def contains_bottom(value: ComplexObject) -> bool:
    """Return ``True`` when ``value`` contains ⊥ anywhere (including being ⊥)."""
    if value.is_bottom:
        return True
    if isinstance(value, TupleObject):
        return any(contains_bottom(item) for _, item in value.items())
    if isinstance(value, SetObject):
        return any(contains_bottom(element) for element in value)
    return False
