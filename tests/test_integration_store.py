"""End-to-end integration tests: store + schema + calculus + algebra together."""

import pytest

from repro import parse_formula, parse_object, parse_rule
from repro.core.builder import obj
from repro.algebra.translate import translate_rule
from repro.schema.inference import infer_type
from repro.store.database import ObjectDatabase
from repro.store.storage import FileStorage
from repro.workloads import make_document_collection, make_genealogy, make_join_workload


class TestDeductiveStoreWorkflow:
    """Store a genealogy, derive descendants, persist and reload the result."""

    def test_full_cycle(self, tmp_path):
        tree = make_genealogy(3, 2)
        path = str(tmp_path / "db.jsonl")
        database = ObjectDatabase(FileStorage(path))
        database.put("family_tree", tree.family_object)
        database.declare_schema("family_tree", infer_type(tree.family_object))

        rules = [
            parse_rule("[doa: {abraham}]."),
            parse_rule(
                "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
            ),
        ]
        result = database.close_under(rules, against="family_tree", store_as="descendants")
        names = {element.value for element in result.value.get("doa")}
        assert names == set(tree.expected_descendants)
        database.close()

        reopened = ObjectDatabase(FileStorage(path))
        stored = reopened["descendants"]
        assert {element.value for element in stored.get("doa")} == set(
            tree.expected_descendants
        )
        reopened.close()


class TestDocumentStoreWorkflow:
    """Documents: schema inference, indexed search, query, update, transaction."""

    @pytest.fixture
    def documents_db(self):
        database = ObjectDatabase()
        collection = make_document_collection(8, 3, 3, rng=4)
        database.put("library", collection)
        return database, collection

    def test_inferred_schema_accepts_future_conforming_writes(self, documents_db):
        database, collection = documents_db
        database.declare_schema("library", infer_type(collection))
        # Re-writing the same object conforms trivially.
        database.put("library", collection)

    def test_indexed_title_lookup(self, documents_db):
        database, _ = documents_db
        database.create_index("docs.title")
        matches = database.find(parse_object("[docs: {[title: doc3]}]"), path="docs.title")
        assert matches == ["library"]

    def test_keyword_query_via_calculus(self, documents_db):
        database, collection = documents_db
        result = database.query(
            "[docs: {[title: X, sections: {[keywords: {lattice}]}]}]", against="library"
        )
        titles = set()
        if not result.is_bottom:
            titles = {doc.get("title").value for doc in result.get("docs")}
        # Cross-check against a direct scan of the generated collection.
        expected = set()
        for document in collection.get("docs"):
            for section in document.get("sections"):
                if obj("lattice") in section.get("keywords"):
                    expected.add(document.get("title").value)
        assert titles == expected

    def test_transactional_update(self, documents_db):
        database, _ = documents_db
        with database.transaction() as txn:
            txn.put("catalog", obj({"count": 8}))
        assert database["catalog"] == obj({"count": 8})


class TestCalculusAlgebraStoreAgreement:
    def test_translated_plan_matches_rule_on_stored_data(self):
        workload = make_join_workload(60, join_domain=10, rng=3)
        database = ObjectDatabase()
        database.put("r1", workload.as_object.get("r1"))
        database.put("r2", workload.as_object.get("r2"))
        rule = parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]")
        whole = database.as_object()
        assert translate_rule(rule).apply(whole) == rule.apply(whole)

    def test_query_facade_matches_direct_interpretation(self):
        from repro.calculus.interpretation import interpret

        workload = make_join_workload(40, join_domain=6, rng=9)
        database = ObjectDatabase()
        database.put("r1", workload.as_object.get("r1"))
        database.put("r2", workload.as_object.get("r2"))
        query = parse_formula("[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]")
        assert database.query(query) == interpret(query, database.as_object())
