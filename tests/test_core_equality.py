"""Unit tests for Definition 2.2 equality and normalization (repro.core.equality)."""

from repro.core.builder import obj
from repro.core.equality import contains_bottom, contains_top, normalize, objects_equal
from repro.core.objects import BOTTOM, TOP, Atom, SetObject, TupleObject


class TestNormalize:
    def test_atoms_and_specials_unchanged(self):
        assert normalize(Atom(1)) == Atom(1)
        assert normalize(TOP) is TOP
        assert normalize(BOTTOM) is BOTTOM

    def test_drops_bottom_attributes(self):
        raw = TupleObject.raw({"a": Atom(1), "b": BOTTOM})
        assert normalize(raw) == obj({"a": 1})

    def test_drops_bottom_elements(self):
        raw = SetObject.raw([Atom(1), BOTTOM])
        assert normalize(raw) == obj([1])

    def test_propagates_top_from_tuples(self):
        raw = TupleObject.raw({"a": SetObject.raw([TOP]), "b": Atom(2)})
        assert normalize(raw) is TOP

    def test_propagates_top_from_nested_sets(self):
        raw = SetObject.raw([SetObject.raw([TOP])])
        assert normalize(raw) is TOP

    def test_does_not_reduce(self):
        small = obj({"a": 1})
        big = obj({"a": 1, "b": 2})
        raw = SetObject.raw([small, big])
        assert len(normalize(raw)) == 2


class TestObjectsEqual:
    def test_atoms(self):
        assert objects_equal(Atom(1), Atom(1))
        assert not objects_equal(Atom(1), Atom(2))
        assert not objects_equal(Atom(1), Atom(1.0))

    def test_tuple_equality_ignores_bottom(self):
        assert objects_equal(
            obj({"a": 1, "b": 2}), TupleObject.raw({"a": Atom(1), "b": Atom(2), "c": BOTTOM})
        )

    def test_set_equality_ignores_bottom(self):
        assert objects_equal(SetObject.raw([Atom(1), BOTTOM]), obj([1]))

    def test_top_contagion(self):
        assert objects_equal(TupleObject.raw({"a": TOP}), TOP)

    def test_different_kinds_not_equal(self):
        # The paper: [a: x], {x} and x are not equal.
        assert not objects_equal(obj({"a": 1}), obj([1]))
        assert not objects_equal(obj([1]), obj(1))
        assert not objects_equal(obj({"a": 1}), obj(1))

    def test_unreduced_sets_with_extra_element_differ(self):
        # Definition 2.2 does not identify mutually dominating sets; that is
        # the job of reduction (Definition 3.3).
        left = SetObject.raw([obj({"a": 1}), obj({"a": 1, "b": 2})])
        right = SetObject.raw([obj({"a": 1, "b": 2})])
        assert not objects_equal(left, right)


class TestContainment:
    def test_contains_top(self):
        assert contains_top(TOP)
        assert contains_top(TupleObject.raw({"a": TOP}))
        assert not contains_top(obj({"a": 1}))

    def test_contains_bottom(self):
        assert contains_bottom(BOTTOM)
        assert contains_bottom(TupleObject.raw({"a": BOTTOM}))
        assert not contains_bottom(obj({"a": 1}))
        assert contains_bottom(SetObject.raw([BOTTOM]))
