"""Lower logical plans of "relational shape" rules into algebra expressions.

Every rule in the paper's Example 4.2 has the same conjunctive shape::

    [r: {HEAD_PATTERN}] :- [r1: {PATTERN1}, r2: {PATTERN2}, ...]

where each ``PATTERNi`` is a flat tuple of variables and constants over one
named relation of the database and ``HEAD_PATTERN`` is a flat tuple (or a bare
variable) built from the body's variables and fresh constants.  For that
fragment the calculus coincides with select–project–join–rename plans.

The lowering no longer re-parses the rule body itself: the body compiles
through the shared plan pipeline (:func:`repro.plan.compile.compile_body`,
:func:`repro.plan.optimize.optimize_body`) and this module lowers the
resulting :class:`~repro.plan.ir.BodyPlan` — every scan leaf becomes one
relation access, and the **optimizer's cost-ordered leaves decide the join
order**, so the same reordering that accelerates the engine accelerates the
algebraic route:

* constants in a body pattern become pattern selections,
* variables become (renamed) output columns,
* variables shared between two body patterns become join conditions,
* the head pattern becomes the final projection/renaming, and
* the head's surrounding structure (the relation name it assigns to) is
  rebuilt around the computed set.

Rules outside the fragment (nested patterns, recursion through the head,
set-valued head nesting, several patterns per relation attribute) raise
:class:`TranslationError` naming the offending rule, pattern and attribute
path; the calculus evaluates them directly.  The ``bench_rules_vs_algebra``
benchmark and the integration tests use the translator to confirm that both
evaluation routes agree on the fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import AlgebraError
from repro.core.objects import ComplexObject, SetObject, TupleObject
from repro.algebra.expressions import (
    AlgebraExpression,
    Join,
    MapTuple,
    Project,
    Relation,
    Rename,
    Select,
    SelectPattern,
    evaluate,
)
from repro.calculus.rules import Rule
from repro.calculus.terms import Constant, Formula, SetFormula, TupleFormula, Variable
from repro.plan.compile import compile_body
from repro.plan.ir import ScanLeaf
from repro.plan.optimize import optimize_body

__all__ = ["TranslationError", "RulePlan", "translate_rule"]


class TranslationError(AlgebraError):
    """The rule is outside the translatable conjunctive fragment."""


@dataclass(frozen=True)
class _BodyAtom:
    """One body conjunct: a flat pattern over one relation of the database."""

    relation: str
    constants: Tuple[Tuple[str, ComplexObject], ...]
    variables: Tuple[Tuple[str, str], ...]  # (attribute, variable name)


@dataclass(frozen=True)
class RulePlan:
    """A translated rule: an algebra plan plus the head reconstruction recipe."""

    rule: Rule
    plan: AlgebraExpression
    head_relation: Optional[str]
    output_columns: Tuple[str, ...]

    def apply(self, database: ComplexObject) -> ComplexObject:
        """Evaluate the plan and rebuild the rule head around the result set."""
        result_set = evaluate(self.plan, database)
        if self.head_relation is None:
            return result_set
        return TupleObject({self.head_relation: result_set})


def translate_rule(rule: Rule) -> RulePlan:
    """Translate ``rule`` into a :class:`RulePlan`; raises :class:`TranslationError`."""
    if rule.is_fact:
        raise TranslationError(
            f"cannot translate rule `{rule.to_text()}`: facts need no algebra plan"
        )
    atoms = _lower_body(rule)
    head_relation, head_pattern = _parse_head(rule)
    plan, columns = _build_join_plan(atoms)
    plan, output_columns = _apply_head(rule, plan, columns, head_pattern)
    return RulePlan(
        rule=rule, plan=plan, head_relation=head_relation, output_columns=output_columns
    )


# -- body ---------------------------------------------------------------------------
def _reject(rule: Rule, reason: str) -> TranslationError:
    """A :class:`TranslationError` that names the offending rule."""
    return TranslationError(f"cannot translate rule `{rule.to_text()}`: {reason}")


def _lower_body(rule: Rule) -> List[_BodyAtom]:
    """Lower the rule body's compiled plan into relation atoms, in plan order.

    The leaves arrive cost-ordered from the optimizer, so the join plan built
    from them inherits the optimizer's join order.
    """
    plan = optimize_body(compile_body(rule.body))
    atoms: List[_BodyAtom] = []
    seen_relations: Dict[str, int] = {}
    for leaf in plan.leaves:
        if not isinstance(leaf, ScanLeaf):
            where = str(leaf.path) or "the database root"
            raise _reject(
                rule,
                f"the body must be a tuple of relation patterns, but"
                f" `{leaf.describe()}` reads {where} directly instead of"
                " scanning a named relation",
            )
        if len(leaf.path.steps) != 1:
            where = str(leaf.path) or "the database root"
            raise _reject(
                rule,
                f"the pattern `{leaf.element.to_text()}` matches a set at"
                f" {where}; only sets stored directly under one relation"
                " attribute are translatable",
            )
        relation_name = leaf.path.steps[0]
        seen_relations[relation_name] = seen_relations.get(relation_name, 0) + 1
        if seen_relations[relation_name] > 1:
            raise _reject(
                rule,
                f"relation {relation_name!r} is matched by"
                f" {seen_relations[relation_name]} set patterns; exactly one"
                " is translatable (a second pattern would need a self-join"
                " the fragment cannot express)",
            )
        pattern = leaf.element
        if not isinstance(pattern, TupleFormula):
            raise _reject(
                rule,
                f"the pattern `{pattern.to_text()}` for relation"
                f" {relation_name!r} must be a flat tuple of variables and"
                " constants (bare variables need lattice meets, not joins)",
            )
        constants: List[Tuple[str, ComplexObject]] = []
        variables: List[Tuple[str, str]] = []
        for attribute, child in pattern.items():
            if isinstance(child, Constant):
                constants.append((attribute, child.value))
            elif isinstance(child, Variable):
                variables.append((attribute, child.name))
            else:
                raise _reject(
                    rule,
                    f"the nested pattern `{child.to_text()}` under"
                    f" {relation_name}.{attribute} is not translatable"
                    " (only flat variables and constants map to columns)",
                )
        atoms.append(
            _BodyAtom(
                relation=relation_name,
                constants=tuple(constants),
                variables=tuple(variables),
            )
        )
    if not atoms:
        raise _reject(rule, "the body references no relation")
    return atoms


def _atom_plan(atom: _BodyAtom) -> Tuple[AlgebraExpression, Tuple[str, ...]]:
    """Plan for one body atom: select constants, enforce repeated variables, rename."""
    plan: AlgebraExpression = Relation(atom.relation)
    if atom.constants:
        plan = SelectPattern(plan, TupleObject(dict(atom.constants)))
    # A variable used twice inside the same pattern requires value equality.
    by_variable: Dict[str, List[str]] = {}
    for attribute, variable in atom.variables:
        by_variable.setdefault(variable, []).append(attribute)
    for variable, attributes in by_variable.items():
        if len(attributes) > 1:
            plan = Select(plan, _equal_attributes_predicate(tuple(attributes)))
    # Keep one column per variable, named after the variable.
    keep = {attributes[0]: variable for variable, attributes in by_variable.items()}
    plan = Project(plan, tuple(keep))
    plan = Rename(plan, keep)
    return plan, tuple(sorted(by_variable))


def _equal_attributes_predicate(attributes: Tuple[str, ...]):
    def predicate(element: ComplexObject) -> bool:
        if not isinstance(element, TupleObject):
            return False
        first = element.get(attributes[0])
        if first.is_bottom:
            return False
        return all(element.get(name) == first for name in attributes[1:])

    return predicate


def _build_join_plan(atoms: Sequence[_BodyAtom]) -> Tuple[AlgebraExpression, Tuple[str, ...]]:
    plan, columns = _atom_plan(atoms[0])
    known = set(columns)
    for atom in atoms[1:]:
        right_plan, right_columns = _atom_plan(atom)
        shared = sorted(known & set(right_columns))
        pairs = [(name, name) for name in shared]
        if not pairs:
            # A cross product: join with an always-true condition (no pairs).
            pairs = []
        plan = Join(plan, right_plan, pairs)
        known |= set(right_columns)
    return plan, tuple(sorted(known))


# -- head ---------------------------------------------------------------------------
def _parse_head(rule: Rule) -> Tuple[Optional[str], Formula]:
    """Split the head into (relation name or None, element pattern)."""
    head = rule.head
    if isinstance(head, SetFormula):
        return None, _single_element(rule, head, "the head set")
    if isinstance(head, TupleFormula):
        if len(head) != 1:
            raise _reject(
                rule,
                f"the head `{head.to_text()}` must assign to exactly one"
                f" relation, not {len(head)}",
            )
        ((relation_name, value),) = head.items()
        if not isinstance(value, SetFormula):
            raise _reject(
                rule,
                f"the head relation {relation_name!r} must be set-valued, got"
                f" `{value.to_text()}`",
            )
        return relation_name, _single_element(
            rule, value, f"the head relation {relation_name!r}"
        )
    raise _reject(
        rule,
        f"the head `{head.to_text()}` must be a set or a one-relation tuple",
    )


def _single_element(rule: Rule, formula: SetFormula, what: str) -> Formula:
    if len(formula.elements) != 1:
        raise _reject(
            rule,
            f"{what} must contain exactly one pattern, got"
            f" `{formula.to_text()}`",
        )
    return formula.elements[0]


def _apply_head(
    rule: Rule,
    plan: AlgebraExpression,
    columns: Tuple[str, ...],
    pattern: Formula,
) -> Tuple[AlgebraExpression, Tuple[str, ...]]:
    if isinstance(pattern, Variable):
        if pattern.name not in columns:
            raise _reject(
                rule,
                f"head variable {pattern.name} is not produced by the body"
                f" (available columns: {', '.join(columns) or 'none'})",
            )
        # A bare-variable head collects the variable's *values*, not one-column
        # tuples, so the projected column is unwrapped.
        projected = Project(plan, (pattern.name,))
        unwrapped = MapTuple(projected, _extract_attribute_function(pattern.name))
        return unwrapped, (pattern.name,)
    if not isinstance(pattern, TupleFormula):
        raise _reject(
            rule,
            f"the head pattern `{pattern.to_text()}` must be a flat tuple or"
            " a variable",
        )
    variable_columns: Dict[str, str] = {}
    constant_columns: Dict[str, ComplexObject] = {}
    for attribute, child in pattern.items():
        if isinstance(child, Variable):
            if child.name not in columns:
                raise _reject(
                    rule,
                    f"head variable {child.name} is not produced by the body"
                    f" (available columns: {', '.join(columns) or 'none'})",
                )
            variable_columns[attribute] = child.name
        elif isinstance(child, Constant):
            constant_columns[attribute] = child.value
        else:
            raise _reject(
                rule,
                f"the nested head pattern `{child.to_text()}` under"
                f" {attribute!r} is not translatable",
            )
    result = Project(plan, tuple(variable_columns.values()))
    result = Rename(result, {var: attr for attr, var in variable_columns.items()})
    if constant_columns:
        result = MapTuple(result, _add_constants_function(constant_columns))
    return result, tuple(sorted(set(variable_columns) | set(constant_columns)))


def _extract_attribute_function(name: str):
    def extract(element: ComplexObject) -> ComplexObject:
        if isinstance(element, TupleObject):
            return element.get(name)
        return element

    return extract


def _add_constants_function(constants: Dict[str, ComplexObject]):
    def add_constants(element: ComplexObject) -> ComplexObject:
        if not isinstance(element, TupleObject):
            return element
        combined = element.as_dict()
        combined.update(constants)
        return TupleObject(combined)

    return add_constants
