"""First-normal-form relations.

A :class:`Relation` is a set of rows over a fixed list of attributes whose
values are atomic (int, float, str, bool) or ``None`` (the SQL-style null the
paper's introduction complains about).  Rows are immutable and hashable, so a
relation is genuinely a *set*: duplicate rows collapse, and set-based algebra
operators (:mod:`repro.relational.algebra`) have their textbook semantics.

This is the baseline system the paper argues against; it is implemented fully
(not stubbed) because several benchmarks compare a calculus query against the
equivalent relational plan and because the bridge converts between the two
representations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.atoms import is_atom_value

__all__ = ["Row", "Relation"]


class Row:
    """An immutable row: a mapping from attribute names to atomic values or ``None``."""

    __slots__ = ("_items", "_hash")

    def __init__(self, values: Mapping[str, object]):
        cleaned = {}
        for name, value in values.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"attribute names must be non-empty strings: {name!r}")
            if value is not None and not is_atom_value(value):
                raise TypeError(
                    f"1NF rows only hold atomic values or None; attribute {name!r}"
                    f" got {type(value).__name__}"
                )
            cleaned[name] = value
        items = tuple(sorted(cleaned.items()))
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, key, value):
        raise AttributeError("Row is immutable")

    def get(self, name: str, default=None):
        for key, value in self._items:
            if key == name:
                return value
        return default

    def __getitem__(self, name: str):
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self._items)

    def attributes(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self._items)

    def items(self) -> Tuple[Tuple[str, object], ...]:
        return self._items

    def as_dict(self) -> Dict[str, object]:
        return dict(self._items)

    def project(self, names: Sequence[str]) -> "Row":
        """Return the row restricted to ``names`` (missing attributes become null)."""
        return Row({name: self.get(name) for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Row":
        """Return the row with attributes renamed according to ``mapping``."""
        return Row({mapping.get(name, name): value for name, value in self._items})

    def merge(self, other: "Row") -> Optional["Row"]:
        """Combine two rows; ``None`` when they disagree on a shared attribute."""
        combined = self.as_dict()
        for name, value in other.items():
            if name in combined and combined[name] != value:
                return None
            combined[name] = value
        return Row(combined)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._items)
        return f"Row({inner})"


class Relation:
    """A named, schema-carrying set of :class:`Row` objects."""

    __slots__ = ("name", "attributes", "_rows")

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Mapping[str, object]] = (),
        name: str = "",
    ):
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attribute names in schema: {attrs}")
        materialized: List[Row] = []
        for row in rows:
            materialized.append(self._coerce_row(row, attrs))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_rows", frozenset(materialized))

    @staticmethod
    def _coerce_row(row: Mapping[str, object], attrs: Tuple[str, ...]) -> Row:
        if isinstance(row, Row):
            data = row.as_dict()
        else:
            data = dict(row)
        unknown = set(data) - set(attrs)
        if unknown:
            extra = ", ".join(sorted(unknown))
            raise ValueError(f"row has attributes outside the schema: {extra}")
        return Row({name: data.get(name) for name in attrs})

    def __setattr__(self, key, value):
        raise AttributeError("Relation is immutable")

    # -- collection protocol --------------------------------------------------------
    @property
    def rows(self) -> FrozenSet[Row]:
        return self._rows

    def __iter__(self) -> Iterator[Row]:
        # Deterministic iteration order keeps printed output and tests stable.
        return iter(sorted(self._rows, key=lambda row: tuple(map(_sortable, row.items()))))

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row) -> bool:
        if isinstance(row, Mapping) and not isinstance(row, Row):
            row = Row({name: row.get(name) for name in self.attributes})
        return row in self._rows

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return set(self.attributes) == set(other.attributes) and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((frozenset(self.attributes), self._rows))

    def __repr__(self) -> str:
        label = self.name or "relation"
        return f"<Relation {label}({', '.join(self.attributes)}) with {len(self)} rows>"

    # -- convenience ----------------------------------------------------------------
    def with_name(self, name: str) -> "Relation":
        return Relation(self.attributes, self._rows, name=name)

    def add(self, row: Mapping[str, object]) -> "Relation":
        """Return a new relation with ``row`` inserted."""
        return Relation(self.attributes, list(self._rows) + [row], name=self.name)

    def remove(self, row: Mapping[str, object]) -> "Relation":
        """Return a new relation without ``row`` (no error if absent)."""
        target = self._coerce_row(row, self.attributes)
        return Relation(
            self.attributes,
            (existing for existing in self._rows if existing != target),
            name=self.name,
        )

    def to_dicts(self) -> List[Dict[str, object]]:
        """Rows as plain dictionaries, in deterministic order."""
        return [row.as_dict() for row in self]


def _sortable(item: Tuple[str, object]) -> Tuple[str, str, str]:
    name, value = item
    return (name, type(value).__name__, repr(value))
