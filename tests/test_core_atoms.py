"""Unit tests for atomic-value helpers (repro.core.atoms)."""

import pytest

from repro.core.atoms import atom_key, atom_sort, atoms_identical, is_atom_value


class TestIsAtomValue:
    def test_accepts_all_four_sorts(self):
        assert is_atom_value(3)
        assert is_atom_value(2.5)
        assert is_atom_value("john")
        assert is_atom_value(True)

    def test_rejects_other_values(self):
        assert not is_atom_value(None)
        assert not is_atom_value([1, 2])
        assert not is_atom_value({"a": 1})
        assert not is_atom_value(object())


class TestAtomSort:
    def test_sorts(self):
        assert atom_sort(1) == "int"
        assert atom_sort(1.0) == "float"
        assert atom_sort("x") == "string"
        assert atom_sort(False) == "bool"

    def test_bool_is_not_int(self):
        # bool subclasses int in Python; the model keeps them apart.
        assert atom_sort(True) == "bool"

    def test_rejects_non_atom(self):
        with pytest.raises(TypeError):
            atom_sort([1])


class TestAtomKey:
    def test_same_sort_orders_by_value(self):
        assert atom_key(1) < atom_key(2)
        assert atom_key("a") < atom_key("b")

    def test_different_sorts_are_comparable(self):
        # The key only has to give a total order; exact ranking is unspecified.
        assert atom_key(1) != atom_key(1.0)
        assert (atom_key(1) < atom_key("a")) or (atom_key("a") < atom_key(1))

    def test_bool_and_int_keys_differ(self):
        assert atom_key(True) != atom_key(1)


class TestAtomsIdentical:
    def test_identical_values(self):
        assert atoms_identical(3, 3)
        assert atoms_identical("john", "john")

    def test_distinguishes_sorts(self):
        assert not atoms_identical(1, 1.0)
        assert not atoms_identical(1, True)
        assert not atoms_identical(0, False)

    def test_different_values(self):
        assert not atoms_identical(1, 2)
        assert not atoms_identical("a", "b")
