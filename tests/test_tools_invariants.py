"""The AST invariant checker (tools/check_invariants.py) holds on this tree."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
CHECKER = REPO_ROOT / "tools" / "check_invariants.py"

spec = importlib.util.spec_from_file_location("check_invariants", CHECKER)
check_invariants = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_invariants)


class TestCurrentTreeIsClean:
    def test_raw_constructors(self):
        assert check_invariants.check_raw_constructors() == []

    def test_fault_points(self):
        assert check_invariants.check_fault_points() == []

    def test_lock_discipline(self):
        assert check_invariants.check_lock_discipline() == []

    def test_script_exits_zero(self):
        completed = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "invariant raw-constructors: ok" in completed.stdout


class TestRegistryParsing:
    def test_known_points_match_the_runtime_registry(self):
        """The AST-parsed registry equals the imported one (no drift)."""
        from repro.fault import KNOWN_POINTS

        parsed, _ = check_invariants._registered_points()
        assert parsed == set(KNOWN_POINTS)

    def test_every_fired_point_has_a_site(self):
        sites = check_invariants._fired_points()
        assert set(sites) == set(check_invariants._registered_points()[0])
        assert all(sites.values())
