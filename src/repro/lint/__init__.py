"""repro.lint — whole-program static analysis for rule programs and queries.

The paper's calculus is deliberately liberal: any pair of well-formed
formulae with the containment condition is a rule, and nothing stops an
author from writing a program that diverges (Example 4.6), contradicts the
sub-object lattice, or joins without a single usable index.  This package is
the static gate a database system runs before evaluation — three analyses
over one shared :class:`~repro.lint.diagnostics.LintReport`:

* **program graph** (:mod:`repro.lint.graph`) — recursion and divergence
  heuristics on the engine's dependency relation, duplicate clauses, rules
  unreachable from a query head, and the stratification report;
* **formula level** (:mod:`repro.lint.formulas`) — unsatisfiability via ⊥/⊤
  propagation through the sub-object lattice, parameters in rules, and
  single-use variables;
* **plan level** (:mod:`repro.lint.plans`) — the optimizer's own view:
  index-free cross products, keyless scans, and paths that match nothing in
  a profiled database.

Every finding carries a stable ``RLxxx`` code, a severity, the offending
clause's location, and a one-line fix hint (:data:`CODES` is the registry).
Surfaces: the ``repro lint`` CLI subcommand, ``Session.prepare(lint=...)``,
``Program.lint()``, and the ``lint.*`` counters in :mod:`repro.obs`.

:mod:`repro.calculus.safety` is subsumed: its exact legacy API lives on in
:mod:`repro.lint.legacy` and the old module is a deprecation shim.
"""

from repro.lint.analyzer import check_containment, lint_query, lint_rules, lint_source
from repro.lint.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    ERROR,
    INFO,
    LintReport,
    WARNING,
)
from repro.lint.legacy import RuleDiagnostics, analyze_rule, analyze_rules

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintReport",
    "RuleDiagnostics",
    "WARNING",
    "analyze_rule",
    "analyze_rules",
    "check_containment",
    "lint_query",
    "lint_rules",
    "lint_source",
]
