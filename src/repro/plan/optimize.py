"""The cost-based optimizer: join (leaf) reordering and access-path selection.

Because a body's result is the meet-product of its leaves' alternatives and
the meet is commutative and associative (see :mod:`repro.plan.ir`), the
optimizer may execute leaves in **any** order; it picks the one that keeps
the running partial-substitution count small:

1. free leaves first — binds, constant selections and shape checks produce at
   most one row each, and a :class:`BindLeaf` makes its variable available to
   later dynamic index probes;
2. then a greedy ordering of the scan leaves by estimated surviving rows
   (from :class:`~repro.plan.statistics.DatabaseStatistics`): a static-key
   probe is estimated at ``card/distinct``, a dynamic key counts only once
   its variable is bound by an already-placed leaf, an unkeyed scan at the
   full cardinality — and leaves sharing no variable with what is already
   bound are penalised so cross products run last.

Each placed leaf also records its **access path** — the index probe the
executor should attempt first — which is how selection and attribute-path
pushdown reach :class:`repro.engine.IndexStore` (during evaluation) and
:class:`repro.store.PathIndex` (store-side, see
:meth:`repro.store.ObjectDatabase.query`).  Without statistics the same
greedy pass runs on defaults, which still orders static-key probes before
bare scans — the heuristic the algebra lowering uses at translation time.

The ordering matters twice under the vectorized executor: a small early
frontier means small batches at every later operator, and a leaf whose
dynamic key is bound by an earlier leaf probes the index once per *distinct*
key value in the batch (the executor memoizes probes on object identity), so
placing the binding leaf first turns a scan into a handful of hash lookups.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.plan.ir import (
    BindLeaf,
    BodyPlan,
    CheckLeaf,
    Leaf,
    LeafEstimate,
    ParamLeaf,
    ProgramPlan,
    RuleNode,
    ScanLeaf,
    StratumNode,
)
from repro.plan.statistics import DatabaseStatistics

__all__ = ["optimize_body", "optimize_rule", "optimize_program", "estimate_leaf"]

#: Multiplier applied to a scan leaf sharing no variable with the bound set —
#: a cross product is never *wrong* (the meet-product absorbs it) but almost
#: always the worst possible next step.
_CROSS_PRODUCT_PENALTY = 1.0e6


def estimate_leaf(
    leaf: Leaf,
    bound: Set[str],
    statistics: Optional[DatabaseStatistics],
) -> LeafEstimate:
    """Estimated surviving rows and chosen access path for one leaf.

    ``bound`` is the set of variables bound by the leaves placed before this
    one; only those make a dynamic key probeable.
    """
    if not isinstance(leaf, ScanLeaf):
        # Free leaves produce at most one row; label them by what they do.
        if isinstance(leaf, BindLeaf):
            access = "bind"
        elif isinstance(leaf, CheckLeaf):
            access = "check"
        elif isinstance(leaf, ParamLeaf):
            access = f"param ${leaf.name}"
        else:
            access = "select"
        return LeafEstimate(rows=1.0, access=access)
    stats = statistics if statistics is not None else DatabaseStatistics()
    cardinality = stats.cardinality(leaf.path)
    if leaf.static_keys:
        key_path, atom = leaf.static_keys[0]
        return LeafEstimate(
            rows=stats.equality_estimate(leaf.path, key_path),
            access=f"index {key_path}={atom.to_text()}",
        )
    if leaf.param_keys:
        # A bound parameter is a ground atom by execute time, so the probe
        # costs like a static equality key even though the value is unknown
        # at planning time.
        key_path, name = leaf.param_keys[0]
        return LeafEstimate(
            rows=stats.equality_estimate(leaf.path, key_path),
            access=f"index {key_path}=${name} (param)",
        )
    for key_path, name in leaf.dynamic_keys:
        if name in bound:
            return LeafEstimate(
                rows=stats.equality_estimate(leaf.path, key_path),
                access=f"index {key_path}=${name}",
            )
    return LeafEstimate(rows=cardinality, access="scan")


def optimize_body(
    plan: BodyPlan,
    statistics: Optional[DatabaseStatistics] = None,
    shapes=None,
) -> BodyPlan:
    """Reorder ``plan``'s leaves by estimated cost; annotate each with its estimate.

    ``shapes`` (a :class:`~repro.lint.shapes.ProgramShapes`) makes the shape
    analysis load-bearing: a body the abstract interpreter proves can never
    produce a row is marked ``pruned`` (the executor then short-circuits to
    zero rows), and each scan leaf's estimate is annotated with the inferred
    element shape for EXPLAIN.  Pruning only happens on *grounded* inferences
    — an engine run infers against the actual database, so the proof is
    relative to the world that will really be scanned.
    """
    if shapes is not None and shapes.grounded:
        failure = shapes.body_failure(plan.body)
        if failure is not None:
            return BodyPlan(
                body=plan.body,
                leaves=plan.leaves,
                optimized=True,
                estimates=tuple(
                    LeafEstimate(rows=0.0, access="pruned") for _ in plan.leaves
                ),
                pruned=failure.detail,
            )
    free = [leaf for leaf in plan.leaves if not isinstance(leaf, ScanLeaf)]
    scans = [leaf for leaf in plan.leaves if isinstance(leaf, ScanLeaf)]

    ordered: List[Leaf] = list(free)
    estimates: List[LeafEstimate] = [
        estimate_leaf(leaf, set(), statistics) for leaf in free
    ]
    bound: Set[str] = set()
    for leaf in free:
        if isinstance(leaf, BindLeaf) and leaf.name:
            bound.add(leaf.name)

    remaining = list(scans)
    while remaining:
        best_index = 0
        best_estimate: Optional[LeafEstimate] = None
        best_score = float("inf")
        for index, leaf in enumerate(remaining):
            estimate = estimate_leaf(leaf, bound, statistics)
            connected = not bound or bool(leaf.variables & bound) or not leaf.variables
            score = estimate.rows if connected else estimate.rows * _CROSS_PRODUCT_PENALTY
            if score < best_score:
                best_score = score
                best_index = index
                best_estimate = estimate
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        estimates.append(best_estimate)
        bound |= chosen.variables

    if shapes is not None:
        estimates = [
            _annotate_shape(leaf, estimate, shapes)
            for leaf, estimate in zip(ordered, estimates)
        ]
    return BodyPlan(
        body=plan.body,
        leaves=tuple(ordered),
        optimized=True,
        estimates=tuple(estimates),
    )


def _annotate_shape(leaf: Leaf, estimate: LeafEstimate, shapes) -> LeafEstimate:
    """Attach the inferred element shape to a scan leaf's estimate."""
    if not isinstance(leaf, ScanLeaf):
        return estimate
    element = shapes.scan_element(leaf.path)
    description = "empty" if element is None else element.describe()
    return LeafEstimate(rows=estimate.rows, access=estimate.access, shape=description)


def optimize_rule(
    node: RuleNode,
    statistics: Optional[DatabaseStatistics] = None,
    shapes=None,
) -> RuleNode:
    """Optimize one rule node (facts pass through unchanged)."""
    if node.body_plan is None:
        return node
    return RuleNode(
        rule=node.rule, body_plan=optimize_body(node.body_plan, statistics, shapes)
    )


def optimize_program(
    plan: ProgramPlan,
    statistics: Optional[DatabaseStatistics] = None,
    shapes=None,
) -> ProgramPlan:
    """Optimize every rule of a program plan."""
    return ProgramPlan(
        strata=tuple(
            StratumNode(
                rules=tuple(
                    optimize_rule(node, statistics, shapes) for node in stratum.rules
                ),
                recursive=stratum.recursive,
            )
            for stratum in plan.strata
        )
    )
