"""The :class:`ObjectDatabase` facade.

An object database is a named collection of complex objects on top of a
storage engine, with:

* calculus queries: formulae evaluate against one stored object (or against
  the whole database seen as a single tuple object, exactly the paper's "the
  entire database can be modeled by a single object") through the session
  facade of :mod:`repro.api` — :meth:`ObjectDatabase.query` is its
  deprecation shim — with the store contributing the access-path decisions:
  root-attribute and indexed-path selections are pushed into the store
  instead of materialising the snapshot (``--explain`` on the CLI shows the
  plan), and :meth:`ObjectDatabase.apply_rules` / :meth:`close_under`
  evaluate rules and closures in place (the latter through the plan-compiled
  engines);
* pattern search across objects: :meth:`find` returns the names of the stored
  objects of which a pattern is a sub-object, prefiltering through every
  path index the pattern pins (``access_stats`` counts prefilters vs scans);
* schema enforcement: a type per name (optional) checked on every write;
* functional updates with :mod:`repro.store.updates`, and atomic
  multi-statement transactions with :mod:`repro.store.transactions`.

Concurrency discipline
----------------------
The database is safe for concurrent use from multiple threads.  All reads run
under the shared side of an :class:`~repro.store.locks.RWLock`; every commit
— a single ``put``/``remove`` as much as a transaction batch — validates all
schemas and encodes everything *first*, then takes the exclusive side once to
conflict-check, apply to storage (one WAL append + fsync for
:class:`~repro.store.storage.FileStorage`), and maintain the indexes.
Readers therefore only ever observe fully-committed states, and a failed
commit leaves the database untouched by construction.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import ConflictError, SchemaError, StoreError, TransactionError
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY as _METRICS
from repro.core.objects import BOTTOM, ComplexObject, SetObject, TupleObject
from repro.core.order import is_subobject
from repro.calculus.fixpoint import ClosureResult, close
from repro.calculus.rules import Rule, RuleSet
from repro.calculus.terms import Formula, TupleFormula
from repro.schema.check import check_object
from repro.schema.types import SchemaType
from repro.store.index import PathIndex
from repro.store.locks import RWLock
from repro.store.paths import Path
from repro.store.retry import DEFAULT_POLICY, RetryPolicy
from repro.store.storage import MemoryStorage, StorageEngine
from repro.store.transactions import Transaction

__all__ = ["ObjectDatabase"]


class ObjectDatabase:
    """A named collection of complex objects with queries, indexes and updates."""

    def __init__(
        self,
        storage: Optional[StorageEngine] = None,
        *,
        lock_timeout: Optional[float] = None,
    ):
        self._storage = storage if storage is not None else MemoryStorage()
        self._indexes: Dict[str, PathIndex] = {}
        self._schemas: Dict[str, SchemaType] = {}
        # ``lock_timeout`` (seconds) bounds every internal lock acquisition:
        # past it, reads and commits raise LockTimeout instead of hanging.
        self._lock = RWLock(default_timeout=lock_timeout)
        self._version = 0  # bumped once per committed batch
        # Access-path counters: how often queries/finds used an index or
        # pushdown instead of scanning the snapshot (see ``access_stats``).
        # Increments happen under the shared read lock, so they go through
        # their own mutex (read-locked sections run concurrently).
        self._stats_lock = threading.Lock()
        self._access_stats = {
            "find_index_prefilters": 0,
            "find_path_lookups": 0,
            "find_scans": 0,
            "query_root_pushdowns": 0,
            "query_index_shortcircuits": 0,
            "query_scans": 0,
        }
        # Names whose stored value is ⊤.  A ⊤ value collapses as_object() to
        # ⊤ whether or not a formula mentions its name, so the query pushdown
        # must fall back to the snapshot while any exist.  ⊤ can only occur
        # as a whole stored value (any object containing ⊤ collapses to ⊤ at
        # construction), so a value identity test is complete.
        self._top_names = {
            name for name, value in self._storage.items() if value.is_top
        }
        # Lazily-created repro.api.Session the deprecated query() shim routes
        # through (so every evaluation shares one pipeline and plan cache).
        # Sessions are single-threaded while the database must stay safe for
        # concurrent use, so the facade is per thread.
        self._facade_sessions = threading.local()

    # -- basic CRUD -----------------------------------------------------------------
    def put(self, name: str, value) -> ComplexObject:
        """Store an object (plain Python values are converted) under ``name``."""
        from repro.core.builder import obj

        converted = obj(value)
        self.commit_batch({name: converted})
        return converted

    def get(self, name: str, default=None) -> Optional[ComplexObject]:
        """Return the object stored under ``name`` (or ``default``)."""
        with self._lock.read_locked():
            value = self._storage.read(name)
        return default if value is None else value

    def __getitem__(self, name: str) -> ComplexObject:
        with self._lock.read_locked():
            value = self._storage.read(name)
        if value is None:
            raise KeyError(name)
        return value

    def __contains__(self, name: str) -> bool:
        with self._lock.read_locked():
            return self._storage.read(name) is not None

    def remove(self, name: str) -> None:
        """Delete the object stored under ``name`` (no error when absent)."""
        self.commit_batch({name: None})

    def names(self) -> Tuple[str, ...]:
        """The stored names, sorted."""
        with self._lock.read_locked():
            return self._storage.names()

    def items(self) -> List[Tuple[str, ComplexObject]]:
        """The ``(name, object)`` pairs in name order, from one consistent state."""
        with self._lock.read_locked():
            return list(self._storage.items())

    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self._storage.names())

    @property
    def version(self) -> int:
        """A counter bumped once per committed batch (for cheap change checks)."""
        with self._lock.read_locked():
            return self._version

    # -- group commit ---------------------------------------------------------------
    def commit_batch(
        self,
        changes: Mapping[str, Optional[ComplexObject]],
        *,
        expected: Optional[Mapping[str, Optional[ComplexObject]]] = None,
    ) -> None:
        """Apply ``changes`` (name → new value, ``None`` deletes) atomically.

        The all-or-nothing discipline every commit goes through:

        The exclusive lock is taken once and everything decisive happens
        under it, in order:

        1. every written value is schema-checked against the schemas in force
           *at commit time* (checking outside the lock would race a
           concurrent :meth:`declare_schema`), so a violation anywhere in the
           batch rejects the whole batch before anything is touched;
        2. ``expected`` (a snapshot of name → previously-observed value,
           ``None`` for absent) is validated against the current state — any
           mismatch raises :class:`ConflictError` (the retryable
           :class:`TransactionError` subclass) and applies nothing
           (first committer wins);
        3. storage applies the batch as one unit (one WAL append + fsync for
           file-backed engines) and the path indexes are maintained.

        Deletes of names that are already absent are dropped from the batch;
        a batch that ends up empty applies nothing and bumps no version.
        """
        start_ns = time.perf_counter_ns()
        with _trace.span("store.commit") as span:
            if span.enabled:
                span.set(names=len(changes), guarded=expected is not None)
            try:
                with self._lock.write_locked():
                    for name, value in changes.items():
                        if value is None:
                            continue
                        schema = self._schemas.get(name)
                        if schema is not None:
                            issues = check_object(value, schema)
                            if issues:
                                raise SchemaError(
                                    f"object for {name!r} violates its schema:"
                                    f" {issues[0]}"
                                )
                    if expected is not None:
                        for name, before in expected.items():
                            current = self._storage.read(name)
                            if current is not before and current != before:
                                raise ConflictError(
                                    f"write-write conflict on {name!r}: the object"
                                    " changed since the transaction first read it"
                                )
                    effective = {
                        name: value
                        for name, value in changes.items()
                        if value is not None or self._storage.read(name) is not None
                    }
                    if effective:
                        self._storage.apply_batch(effective)
                        for name, value in effective.items():
                            if value is not None and value.is_top:
                                self._top_names.add(name)
                            else:
                                self._top_names.discard(name)
                            for index in self._indexes.values():
                                if value is None:
                                    index.remove(name)
                                else:
                                    index.add(name, value)
                        self._version += 1
            except TransactionError:
                _METRICS.counter("store.conflicts").inc()
                raise
        _METRICS.counter("store.commits").inc()
        _METRICS.histogram("store.commit_ns").observe(
            time.perf_counter_ns() - start_ns
        )

    # -- the whole database as one object ----------------------------------------------
    def as_object(self) -> ComplexObject:
        """The entire database as a single tuple object (Section 4 of the paper).

        Built under the read lock, so the result is one consistent snapshot
        even while writers are committing.
        """
        return TupleObject({name: value for name, value in self.items()})

    def snapshot(self) -> Dict[str, ComplexObject]:
        """A consistent ``name → object`` copy of the current committed state."""
        return dict(self.items())

    # -- schemas -------------------------------------------------------------------------
    def declare_schema(self, name: str, schema: SchemaType) -> None:
        """Attach a schema to ``name``; the current and future values must conform."""
        with self._lock.write_locked():
            current = self._storage.read(name)
            if current is not None:
                issues = check_object(current, schema)
                if issues:
                    raise SchemaError(
                        f"existing object for {name!r} violates the declared schema:"
                        f" {issues[0]}"
                    )
            self._schemas[name] = schema

    def schema_of(self, name: str) -> Optional[SchemaType]:
        """The declared schema of ``name`` (or ``None``)."""
        with self._lock.read_locked():
            return self._schemas.get(name)

    # -- indexes --------------------------------------------------------------------------
    def create_index(self, path: Union[Path, str]) -> PathIndex:
        """Create (or return) a path index and populate it from the stored objects."""
        key = str(path if isinstance(path, Path) else Path(path))
        with self._lock.write_locked():
            if key not in self._indexes:
                index = PathIndex(key)
                index.rebuild(self._storage.items())
                self._indexes[key] = index
            return self._indexes[key]

    def drop_index(self, path: Union[Path, str]) -> None:
        """Remove a path index (no error when absent)."""
        key = str(path if isinstance(path, Path) else Path(path))
        with self._lock.write_locked():
            self._indexes.pop(key, None)

    def indexes(self) -> Tuple[str, ...]:
        """The paths currently indexed."""
        with self._lock.read_locked():
            return tuple(sorted(self._indexes))

    # -- queries --------------------------------------------------------------------------
    @property
    def access_stats(self) -> Dict[str, int]:
        """Counters of index pushdowns vs full scans (a copy; see ``query``/``find``)."""
        with self._stats_lock:
            return dict(self._access_stats)

    def _bump(self, counter: str) -> None:
        with self._stats_lock:
            self._access_stats[counter] += 1
        _METRICS.counter(f"store.index.{counter}").inc()

    def _facade(self):
        """This thread's lazily-created :class:`repro.api.Session` over the database."""
        session = getattr(self._facade_sessions, "session", None)
        if session is None:
            from repro.api import Session

            session = Session(database=self)
            self._facade_sessions.session = session
        return session

    def query(
        self,
        formula,
        *,
        against: Optional[str] = None,
        allow_bottom: bool = False,
    ) -> ComplexObject:
        """Deprecated shim: interpret a formula against one object or the database.

        Delegates to the session facade (:mod:`repro.api`), which makes the
        same access-path decisions this method always made — root-attribute
        pushdown, :class:`PathIndex` ⊥-short-circuit, full-snapshot fallback
        (see :meth:`_choose_access_path`) — and additionally caches the
        optimized plan keyed on :attr:`version`, so repeated queries skip
        re-planning.  New code should hold a session
        (``repro.api.Session(database=db)`` or :func:`repro.connect`) and
        use :meth:`~repro.api.Session.query` /
        :meth:`~repro.api.Session.execute` directly — the latter also
        streams.  The answer is identical to interpreting against the full
        :meth:`as_object`, which the property suite pins.
        """
        import warnings

        warnings.warn(
            "ObjectDatabase.query() is deprecated; use repro.api.Session.query()"
            " (repro.connect(path) or Session(database=db))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._facade().query(
            formula, against=against, allow_bottom=allow_bottom
        )

    def _choose_access_path(self, parsed: Formula, allow_bottom: bool, plan=None):
        """One locked decision pass shared by the session facade and EXPLAIN.

        Returns ``(kind, reason, restricted, total)``: ``kind`` is
        ``"refuted"`` (an index proves ⊥), ``"pushdown"`` (read only the
        mentioned root attributes — ``restricted`` holds them) or
        ``"snapshot"`` (interpret against the full :meth:`as_object`, with
        ``reason`` saying why); ``total`` is the stored-object count at
        decision time.  ``plan``, when given, is a compiled (bound)
        :class:`~repro.plan.ir.BodyPlan` for ``parsed`` whose leaves the
        refutation check reads instead of re-compiling the formula — how a
        prepared query's cached plan avoids per-binding compilation.
        Keeping the decision in one place guarantees EXPLAIN describes
        exactly the access path a query takes.
        """
        with self._lock.read_locked():
            total = len(self._storage.names())
            if not isinstance(parsed, TupleFormula):
                return "snapshot", "formula is not tuple-shaped", None, total
            if self._top_names:
                return (
                    "snapshot",
                    "a stored value is ⊤, which collapses the database object",
                    None,
                    total,
                )
            restricted: Dict[str, ComplexObject] = {}
            for name in parsed.attributes:
                value = self._storage.read(name)
                if value is not None:
                    restricted[name] = value
            if not allow_bottom and self._index_refutes(parsed, plan=plan):
                return "refuted", "a path index refutes the query", restricted, total
            return "pushdown", "", restricted, total

    @staticmethod
    def _pushdown_plan(parsed: Formula, target: ComplexObject):
        """The plan :meth:`query` executes against a pushed-down target.

        Reordering only pays off with several scans to order; a
        single-relation query skips the statistics walk entirely.
        """
        from repro.plan import DatabaseStatistics, ScanLeaf, compile_body, optimize_body

        plan = compile_body(parsed)
        if sum(1 for leaf in plan.leaves if isinstance(leaf, ScanLeaf)) > 1:
            plan = optimize_body(plan, DatabaseStatistics.collect(target))
        return plan

    def _index_refutes(self, parsed: "TupleFormula", plan=None) -> bool:
        """``True`` when a path index proves the whole-database query answers ⊥.

        Looks for a scan leaf of the compiled plan (or of the supplied
        ``plan``, sparing a compile) that pins a ground atom at an indexed
        path under one root attribute; if the index (wildcards included)
        maps that atom to no stored name — or not to the leaf's root
        attribute — the leaf has no witness, its element formula cannot
        vanish (vanishing needs a bare variable or a ⊥ constant, which carry
        no static key), and the conjunction is empty.  Callers hold the read
        lock.
        """
        if not self._indexes:
            return False
        from repro.plan import ScanLeaf, compile_body

        leaves = plan.leaves if plan is not None else compile_body(parsed).leaves
        for leaf in leaves:
            if not isinstance(leaf, ScanLeaf) or not leaf.static_keys:
                continue
            if not leaf.path.steps:
                continue
            root, inner = leaf.path.steps[0], leaf.path.steps[1:]
            for key_path, atom in leaf.static_keys:
                index = self._indexes.get(".".join(inner + key_path.steps))
                if index is None:
                    continue
                if root not in index.lookup(atom):
                    return True
        return False

    def explain_query(
        self,
        formula,
        *,
        against: Optional[str] = None,
        allow_bottom: bool = False,
        analyze: bool = False,
        executor: Optional[str] = None,
    ) -> str:
        """EXPLAIN for :meth:`query`: the chosen access path with est/actual rows.

        Renders exactly the plan a :meth:`query` call with the same arguments
        executes — both go through :meth:`_choose_access_path` and
        :meth:`_pushdown_plan`, so the notes and the leaf order cannot drift
        from the real access path.  ``analyze=True`` (EXPLAIN ANALYZE)
        additionally times the execution and prints wall time per plan node —
        under the vectorized executor also per-leaf batch counts and
        rows/batch.  ``executor`` (``"vector"``/``"scalar"``) selects the
        physical strategy to analyze, so the two can be compared on one plan.
        """
        from repro.plan import DatabaseStatistics, compile_body, match_plan, optimize_body
        from repro.plan.explain import render_body_plan

        parsed = self._as_formula(formula)
        notes: List[str] = []
        plan = None
        executable = True
        if against is not None:
            target = self._require(against)
            notes.append(f"target: stored object {against!r}")
        else:
            kind, reason, restricted, total = self._choose_access_path(
                parsed, allow_bottom
            )
            if kind == "snapshot":
                target = self.as_object()
                notes.append(f"target: full snapshot ({reason})")
            elif kind == "refuted":
                # query() answers ⊥ straight from the index — it reads no
                # stored objects and executes no plan, so neither does the
                # analysis; the plan is shown with estimates only.
                target = TupleObject(restricted)
                plan = self._pushdown_plan(parsed, target)
                executable = False
                notes.append(
                    "index short-circuit: a path index refutes the query;"
                    " answers ⊥ without reading or interpreting"
                    " (plan shown with estimates only)"
                )
            else:
                target = TupleObject(restricted)
                notes.append(
                    f"target: root-attribute pushdown reads {len(restricted)}"
                    f" of {total} stored objects"
                )
                plan = self._pushdown_plan(parsed, target)
        if plan is None:
            plan = optimize_body(compile_body(parsed), DatabaseStatistics.collect(target))
        record: Optional[dict] = None
        if executable:
            record = {"timed": True} if analyze else {}
            match_plan(
                plan, target, allow_bottom=allow_bottom, record=record,
                executor=executor,
            )
        rendered = render_body_plan(
            plan, record=record, header=f"query plan: {parsed.to_text()}"
        )
        return "\n".join(notes + [rendered])

    def find(
        self, pattern: ComplexObject, *, path: Optional[Union[Path, str]] = None
    ) -> List[str]:
        """Names of the stored objects of which ``pattern`` is a sub-object.

        When ``path`` names an index and ``pattern`` pins a value at that path,
        the index narrows the candidates before the sub-object check.  With no
        explicit path, every index whose path the pattern pins with ground
        atoms prefilters the candidates (their intersection), so path-rooted
        patterns avoid the full-snapshot scan entirely; ``access_stats``
        counts prefiltered vs scanned searches.  The whole search runs under
        the read lock, against one consistent state.
        """
        with self._lock.read_locked():
            candidates: Optional[Sequence[str]] = None
            counter = "find_scans"
            if path is not None:
                key = str(path if isinstance(path, Path) else Path(path))
                index = self._indexes.get(key)
                if index is not None:
                    from repro.store.paths import get_path

                    located = get_path(pattern, key)
                    values = (
                        located.elements if isinstance(located, SetObject) else [located]
                    )
                    gathered: List[str] = []
                    for value in values:
                        if value.is_bottom:
                            continue
                        gathered.extend(index.lookup(value))
                    candidates = sorted(set(gathered))
                    counter = "find_path_lookups"
            elif self._indexes:
                candidates = self._prefilter_candidates(pattern)
                if candidates is not None:
                    counter = "find_index_prefilters"
            if candidates is None:
                candidates = self._storage.names()
            self._bump(counter)
            return [
                name
                for name in candidates
                if (stored := self._storage.read(name)) is not None
                and is_subobject(pattern, stored)
            ]

    def _prefilter_candidates(self, pattern: ComplexObject) -> Optional[List[str]]:
        """Candidate names from every index the pattern pins with ground atoms.

        Each pinned atom's lookup is individually a superset of the true
        matches (an atom is only dominated by itself or ⊤, and ⊤-carrying
        objects are in every lookup via the wildcard set), so their
        intersection — across values and across indexes — is a sound
        prefilter; the final sub-object check still runs.  ``None`` means no
        index constrained the pattern.  Callers hold the read lock.
        """
        from repro.store.paths import get_path

        narrowed: Optional[set] = None
        for index in self._indexes.values():
            located = get_path(pattern, index.path)
            values = located.elements if isinstance(located, SetObject) else (located,)
            atoms = [value for value in values if value.is_atom]
            for atom in atoms:
                names = index.lookup(atom)
                narrowed = set(names) if narrowed is None else (narrowed & names)
                if not narrowed:
                    return []
        if narrowed is None:
            return None
        return sorted(narrowed)

    # -- rules ----------------------------------------------------------------------------
    def apply_rules(
        self,
        rules: Union[Rule, RuleSet, Sequence[Rule]],
        *,
        against: Optional[str] = None,
        allow_bottom: bool = False,
    ) -> ComplexObject:
        """Apply rules once (Definition 4.4) to one object or to the whole database."""
        ruleset = rules if isinstance(rules, RuleSet) else RuleSet(
            [rules] if isinstance(rules, Rule) else rules
        )
        target = self.as_object() if against is None else self._require(against)
        return ruleset.apply(target, allow_bottom=allow_bottom)

    def close_under(
        self,
        rules: Union[Rule, RuleSet, Sequence[Rule]],
        *,
        against: Optional[str] = None,
        store_as: Optional[str] = None,
        engine: Optional[str] = "seminaive",
        **guards,
    ) -> ClosureResult:
        """Compute the closure (Definition 4.6) and optionally store the result.

        Evaluation routes through the plan-compiled engines of
        :mod:`repro.engine` (``engine="seminaive"`` by default — stratified,
        delta-driven and index-accelerated; ``"naive"`` iterates the full rule
        set each round).  Pass ``engine=None``, or any keyword only
        :func:`repro.calculus.fixpoint.close` understands (``inflationary``),
        to fall back to the baseline fixpoint.  All engines compute the same
        closure and raise the same :class:`DivergenceError` on divergence.
        """
        target = self.as_object() if against is None else self._require(against)
        if engine is None or "inflationary" in guards:
            result = close(target, rules, **guards)
        else:
            from repro.engine import create_engine

            result = create_engine(engine, rules, **guards).run(target)
        if store_as is not None:
            self.put(store_as, result.value)
        return result

    # -- updates ------------------------------------------------------------------------
    # The single-statement helpers below are read-modify-write: they re-read
    # the current object, recompute, and commit with the read value as the
    # expected state.  A concurrent commit in the window shows up as a
    # ConflictError, and the helper recomputes from the new state — so no
    # concurrent update is ever silently lost, and every retry makes global
    # progress (a conflict means somebody else committed).  The loop is
    # bounded by a RetryPolicy (jittered exponential backoff); exhaustion
    # re-raises the conflict instead of spinning forever.

    def _read_modify_write(
        self,
        name: str,
        compute,
        *,
        require: bool,
        retry: Optional[RetryPolicy] = None,
    ) -> ComplexObject:
        def attempt() -> ComplexObject:
            current = self._require(name) if require else self.get(name, default=None)
            result = compute(BOTTOM if current is None else current)
            self.commit_batch({name: result}, expected={name: current})
            return result

        return (retry or DEFAULT_POLICY).run(attempt)

    def update(
        self,
        name: str,
        path: Union[Path, str],
        value,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> ComplexObject:
        """Assign ``value`` at ``path`` inside the object stored under ``name``."""
        from repro.core.builder import obj
        from repro.store.updates import assign_path

        converted = obj(value)
        return self._read_modify_write(
            name,
            lambda current: assign_path(current, path, converted),
            require=True,
            retry=retry,
        )

    def insert(
        self,
        name: str,
        path: Union[Path, str],
        element,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> ComplexObject:
        """Insert ``element`` into the set at ``path`` inside ``name``."""
        from repro.core.builder import obj
        from repro.store.updates import insert_element

        converted = obj(element)
        return self._read_modify_write(
            name,
            lambda current: insert_element(current, path, converted),
            require=True,
            retry=retry,
        )

    def discard(
        self,
        name: str,
        path: Union[Path, str],
        element,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> ComplexObject:
        """Remove ``element`` from the set at ``path`` inside ``name``."""
        from repro.core.builder import obj
        from repro.store.updates import remove_element

        converted = obj(element)
        return self._read_modify_write(
            name,
            lambda current: remove_element(current, path, converted),
            require=True,
            retry=retry,
        )

    def merge(
        self, name: str, other, *, retry: Optional[RetryPolicy] = None
    ) -> ComplexObject:
        """Lattice-union ``other`` into the object stored under ``name``."""
        from repro.core.builder import obj
        from repro.store.updates import merge_object

        converted = obj(other)
        return self._read_modify_write(
            name,
            lambda current: merge_object(current, converted),
            require=False,
            retry=retry,
        )

    # -- transactions ----------------------------------------------------------------------
    def transaction(self) -> Transaction:
        """Start a buffered transaction against this database."""
        return Transaction(self)

    # -- maintenance -----------------------------------------------------------------------
    def compact(self) -> None:
        """Compact the storage engine's log (engines without one reject this)."""
        compact = getattr(self._storage, "compact", None)  # invariant: unlocked-ok — binds the method; the call runs under the write lock below
        if compact is None:
            raise StoreError("the storage engine does not support compaction")
        with self._lock.write_locked():
            compact()

    # -- helpers ---------------------------------------------------------------------------
    def _require(self, name: str) -> ComplexObject:
        value = self.get(name)
        if value is None:
            raise StoreError(f"no object stored under {name!r}")
        return value

    @staticmethod
    def _as_formula(formula) -> Formula:
        if isinstance(formula, Formula):
            return formula
        if isinstance(formula, str):
            from repro.parser import parse_formula

            return parse_formula(formula)
        from repro.calculus.terms import formula as to_formula

        return to_formula(formula)

    def close(self) -> None:
        """Close the underlying storage engine and drop the object memo caches.

        The order/lattice caches key on intern ids and never pin objects, but
        their *values* (lattice results) and entries accumulate across a
        store's lifetime; teardown is the natural point to release them.
        """
        self._facade_sessions = threading.local()
        self._storage.close()  # invariant: unlocked-ok — teardown is single-threaded by contract
        from repro.core.intern import clear_object_caches

        clear_object_caches()

    def __repr__(self) -> str:
        return f"<ObjectDatabase {len(self)} objects, {len(self._indexes)} indexes>"
