"""Tokenizer for the paper's concrete syntax.

The lexer is a small hand-written scanner (no external dependencies) that
produces a flat list of :class:`Token` objects.  It recognises:

* punctuation: ``[ ] { } , :`` and the rule arrow ``:-`` and the clause
  terminator ``.``;
* numbers: integers (``25``, ``-3``) and floats (``2.5``, ``-0.5``, ``1e-3``);
* identifiers: ``john`` (constant) or ``X1`` (variable — the distinction is
  made by the parser, the lexer only reports IDENT);
* named parameters: ``$name`` (a PARAM token whose value is the bare name,
  only legal in query formulae — see :mod:`repro.api`);
* quoted strings with ``\\"`` and ``\\\\`` escapes;
* ``%`` line comments and arbitrary whitespace, both skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Iterator, List

from repro.core.errors import ParseError

__all__ = ["TokenType", "Token", "tokenize"]


@unique
class TokenType(Enum):
    """Kinds of lexical tokens."""

    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    COLON = ":"
    ARROW = ":-"
    PERIOD = "."
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    IDENT = "ident"
    PARAM = "param"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for error messages)."""

    type: TokenType
    text: str
    value: object
    position: int


_PUNCTUATION = {
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return the token list terminated by an EOF token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        # Whitespace and comments carry no information.
        if char.isspace():
            index += 1
            continue
        if char == "%":
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char in _PUNCTUATION:
            yield Token(_PUNCTUATION[char], char, char, index)
            index += 1
            continue
        if char == ":":
            if index + 1 < length and text[index + 1] == "-":
                yield Token(TokenType.ARROW, ":-", ":-", index)
                index += 2
            else:
                yield Token(TokenType.COLON, ":", ":", index)
                index += 1
            continue
        if char == '"':
            token, index = _scan_string(text, index)
            yield token
            continue
        if char.isdigit() or (
            char in "+-" and index + 1 < length and (text[index + 1].isdigit() or text[index + 1] == ".")
        ):
            token, index = _scan_number(text, index)
            yield token
            continue
        if char == ".":
            # A bare period terminates a clause; periods inside numbers are
            # consumed by the number scanner above.
            yield Token(TokenType.PERIOD, ".", ".", index)
            index += 1
            continue
        if char == "$":
            # A named parameter: '$' immediately followed by an identifier.
            if index + 1 >= length or not (
                text[index + 1].isalpha() or text[index + 1] == "_"
            ):
                raise ParseError(
                    "expected a parameter name after '$'", text, index
                )
            token, end = _scan_identifier(text, index + 1)
            yield Token(TokenType.PARAM, text[index:end], token.value, index)
            index = end
            continue
        if char.isalpha() or char == "_":
            token, index = _scan_identifier(text, index)
            yield token
            continue
        raise ParseError(f"unexpected character {char!r}", text, index)
    yield Token(TokenType.EOF, "", None, length)


def _scan_string(text: str, start: int) -> tuple:
    index = start + 1
    pieces: List[str] = []
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text):
                raise ParseError("unterminated escape sequence", text, index)
            escape = text[index + 1]
            if escape == "n":
                pieces.append("\n")
            elif escape == "t":
                pieces.append("\t")
            else:
                pieces.append(escape)
            index += 2
            continue
        if char == '"':
            value = "".join(pieces)
            return Token(TokenType.STRING, text[start : index + 1], value, start), index + 1
        pieces.append(char)
        index += 1
    raise ParseError("unterminated string literal", text, start)


def _scan_number(text: str, start: int) -> tuple:
    index = start
    if text[index] in "+-":
        index += 1
    digits_start = index
    while index < len(text) and text[index].isdigit():
        index += 1
    is_float = False
    if index < len(text) and text[index] == "." and index + 1 < len(text) and text[index + 1].isdigit():
        is_float = True
        index += 1
        while index < len(text) and text[index].isdigit():
            index += 1
    if index < len(text) and text[index] in "eE":
        lookahead = index + 1
        if lookahead < len(text) and text[lookahead] in "+-":
            lookahead += 1
        if lookahead < len(text) and text[lookahead].isdigit():
            is_float = True
            index = lookahead
            while index < len(text) and text[index].isdigit():
                index += 1
    literal = text[start:index]
    if index == digits_start:
        raise ParseError(f"malformed number {literal!r}", text, start)
    if is_float:
        return Token(TokenType.FLOAT, literal, float(literal), start), index
    return Token(TokenType.INTEGER, literal, int(literal), start), index


def _scan_identifier(text: str, start: int) -> tuple:
    index = start
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    literal = text[start:index]
    return Token(TokenType.IDENT, literal, literal, start), index
