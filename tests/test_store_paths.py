"""Unit tests for attribute paths (repro.store.paths)."""

import pytest

from repro import parse_object
from repro.core.builder import obj
from repro.core.objects import BOTTOM
from repro.store.paths import Path, get_path, has_path, iter_paths


class TestPath:
    def test_parsing_from_text(self):
        assert Path("a.b.c").steps == ("a", "b", "c")
        assert Path("").steps == ()
        assert Path(("a", "b")).steps == ("a", "b")

    def test_equality_with_strings(self):
        assert Path("a.b") == "a.b"
        assert Path("a.b") == Path("a.b")
        assert Path("a.b") != Path("a.c")

    def test_child_parent_root(self):
        path = Path("a.b")
        assert path.child("c") == Path("a.b.c")
        assert path.parent() == Path("a")
        assert Path("").is_root
        assert str(path) == "a.b"

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            Path(("a", ""))


class TestGetPath:
    def test_navigates_tuples(self):
        value = obj({"a": {"b": {"c": 7}}})
        assert get_path(value, "a.b.c") == obj(7)

    def test_missing_path_is_bottom(self):
        assert get_path(obj({"a": 1}), "b") is BOTTOM
        assert get_path(obj({"a": 1}), "a.b") is BOTTOM

    def test_empty_path_is_identity(self):
        value = obj({"a": 1})
        assert get_path(value, "") == value

    def test_descends_through_sets(self):
        value = parse_object("[r1: {[name: peter], [name: john]}]")
        assert get_path(value, "r1.name") == obj(["peter", "john"])

    def test_set_descent_skips_missing_attributes(self):
        value = parse_object("[r1: {[name: peter], [age: 7]}]")
        assert get_path(value, "r1.name") == obj(["peter"])

    def test_atom_in_the_middle_is_bottom(self):
        assert get_path(obj({"a": 1}), "a.b") is BOTTOM


class TestHasPath:
    def test_present_and_absent(self):
        value = parse_object("[r1: {[name: peter]}]")
        assert has_path(value, "r1")
        assert has_path(value, "r1.name")
        assert not has_path(value, "r1.age")
        assert not has_path(value, "r2")

    def test_empty_set_result_counts_as_absent(self):
        assert not has_path(parse_object("[r1: {}]"), "r1.name")


class TestIterPaths:
    def test_all_paths_yielded(self):
        value = obj({"a": {"b": 1}, "c": 2})
        paths = {(str(path), item) for path, item in iter_paths(value)}
        assert ("a", obj({"b": 1})) in paths
        assert ("a.b", obj(1)) in paths
        assert ("c", obj(2)) in paths

    def test_set_elements_share_the_parent_path(self):
        value = parse_object("[r1: {[name: peter], [name: john]}]")
        names = [item for path, item in iter_paths(value) if str(path) == "r1.name"]
        assert sorted(name.value for name in names) == ["john", "peter"]

    def test_atoms_have_no_paths(self):
        assert list(iter_paths(obj(5))) == []
