"""EXPLAIN rendering: pretty-print optimized plans with cardinalities.

The renderer turns the IR of :mod:`repro.plan.ir` into an indented text tree:
one block per stratum (apply-once vs fixpoint), one block per rule, one line
per leaf showing the optimizer's **estimated** surviving rows and chosen
access path, and — when an execution record from
:func:`repro.plan.execute.match_plan` is supplied — the **actual** rows that
survived each leaf, so a bad estimate is visible at a glance.

``Program.explain()``, the CLI's ``run/query --explain`` and the store's
``store query --explain`` all render through this module.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.plan.ir import BodyPlan, ProgramPlan, RuleNode, leaf_key

__all__ = ["render_body_plan", "render_rule_node", "render_program_plan"]


def _leaf_lines(plan: BodyPlan, record: Optional[dict], indent: str) -> list:
    lines = []
    actuals: Dict = (record or {}).get("by_leaf", {})
    estimates = plan.estimates or (None,) * len(plan.leaves)
    for position, (leaf, estimate) in enumerate(zip(plan.leaves, estimates), start=1):
        line = f"{indent}{position}. {leaf.describe()}"
        notes = []
        if estimate is not None:
            notes.append(f"est {estimate.rows:g} rows via {estimate.access}")
        actual = actuals.get(leaf_key(leaf))
        if actual is not None:
            notes.append(f"actual {actual}")
        if notes:
            line += "  [" + ", ".join(notes) + "]"
        lines.append(line)
    if record is not None and "rows" in record:
        lines.append(f"{indent}=> {record['rows']} substitutions (actual)")
    return lines


def render_body_plan(
    plan: BodyPlan, *, record: Optional[dict] = None, header: Optional[str] = None
) -> str:
    """Render one body/query plan (the shape behind ``query --explain``)."""
    kind = "join" if len(plan.leaves) > 1 else "match"
    mode = "cost-ordered" if plan.optimized else "source-ordered"
    lines = []
    if header:
        lines.append(header)
    lines.append(f"{kind} over {len(plan.leaves)} leaves ({mode})")
    lines.extend(_leaf_lines(plan, record, "  "))
    return "\n".join(lines)


def render_rule_node(
    node: RuleNode, *, record: Optional[dict] = None, indent: str = ""
) -> str:
    """Render one planned rule: the head projection over its body plan."""
    lines = [f"{indent}rule {node.rule.to_text()}"]
    if node.body_plan is None:
        lines.append(f"{indent}  emit ground head (fact)")
        return "\n".join(lines)
    lines.append(f"{indent}  project {node.rule.head.to_text()}")
    lines.extend(_leaf_lines(node.body_plan, record, indent + "    "))
    return "\n".join(lines)


def render_program_plan(
    plan: ProgramPlan,
    *,
    iterations: Optional[int] = None,
    rule_records: Optional[Dict] = None,
) -> str:
    """Render a whole program plan, stratum by stratum.

    ``rule_records`` maps a :class:`~repro.calculus.rules.Rule` to the
    execution record collected for it; ``iterations`` is the fixpoint's
    actual round count when the program has been evaluated.
    """
    recursive = sum(1 for stratum in plan.strata if stratum.recursive)
    lines = [f"program plan: {len(plan.strata)} strata ({recursive} recursive)"]
    for number, stratum in enumerate(plan.strata, start=1):
        if stratum.recursive:
            note = f", {iterations} iterations total" if iterations is not None else ""
            lines.append(f"stratum {number}: fixpoint (iterate to closure{note})")
        else:
            lines.append(f"stratum {number}: apply once")
        for node in stratum.rules:
            record = None
            if rule_records is not None:
                record = rule_records.get(node.rule)
            lines.append(render_rule_node(node, record=record, indent="  "))
    return "\n".join(lines)
