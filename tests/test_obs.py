"""Unit tests for the observability substrate: repro.obs.trace / .metrics.

Covers the no-op contract of disabled tracing (the shared NULL_SPAN, no
allocation), span nesting and trace-id assignment, the inclusive-upper-bound
bucketing of the log-scale histograms, the registry's snapshot shape, and the
prepare→execute trace-id propagation through the session facade.
"""

import threading

import pytest

import repro
from repro.obs import metrics, trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_NS,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, Tracer, format_ns, render_span


@pytest.fixture
def tracer():
    installed = trace.enable(max_traces=64)
    installed.clear()
    yield installed
    trace.disable()


# -- disabled tracing is a no-op --------------------------------------------------------


def test_disabled_span_is_the_null_singleton():
    trace.disable()
    assert trace.span("anything") is NULL_SPAN
    assert trace.span("something-else", attr=1) is NULL_SPAN
    assert NULL_SPAN.enabled is False


def test_null_span_is_an_inert_context_manager():
    trace.disable()
    with trace.span("nothing") as span:
        assert span is NULL_SPAN
        span.set(rows=7)  # must not raise, must not record
    assert trace.current_tracer() is None


def test_enable_disable_roundtrip():
    first = trace.enable()
    again = trace.enable()
    assert first is again  # idempotent
    assert trace.current_tracer() is first
    trace.disable()
    assert trace.current_tracer() is None
    assert trace.span("after") is NULL_SPAN


# -- span nesting and trace ids ---------------------------------------------------------


def test_span_nesting_builds_a_tree(tracer):
    with trace.span("root") as root:
        with trace.span("child-a") as child_a:
            with trace.span("leaf") as leaf:
                pass
        with trace.span("child-b") as child_b:
            pass
    assert [child.name for child in root.children] == ["child-a", "child-b"]
    assert child_a.children == [leaf]
    assert child_b.children == []
    assert root.parent_id is None
    assert child_a.parent_id == root.span_id
    assert leaf.parent_id == child_a.span_id


def test_children_inherit_the_root_trace_id(tracer):
    with trace.span("root") as root:
        with trace.span("inner") as inner:
            pass
    assert root.trace_id is not None
    assert inner.trace_id == root.trace_id


def test_separate_roots_open_separate_traces(tracer):
    with trace.span("first") as first:
        pass
    with trace.span("second") as second:
        pass
    assert first.trace_id != second.trace_id
    finished = tracer.traces()
    assert [span.name for span in finished] == ["first", "second"]
    assert tracer.find(first.trace_id) is first
    assert tracer.find("t-999999") is None


def test_spans_record_durations_and_attrs(tracer):
    with trace.span("timed", phase="x") as span:
        span.set(rows=3)
    assert span.duration_ns is not None and span.duration_ns >= 0
    assert span.attrs == {"phase": "x", "rows": 3}
    rendered = render_span(span)
    assert "timed" in rendered and "rows=3" in rendered


def test_span_records_the_escaping_exception(tracer):
    with pytest.raises(ValueError):
        with trace.span("failing") as span:
            raise ValueError("boom")
    assert span.attrs["error"] == "ValueError"
    assert span.duration_ns is not None


def test_finished_ring_is_bounded():
    tracer = Tracer(max_traces=3)
    previous = trace.set_tracer(tracer)
    try:
        for number in range(5):
            with trace.span(f"root-{number}"):
                pass
    finally:
        trace.set_tracer(previous)
    names = [span.name for span in tracer.traces()]
    assert names == ["root-2", "root-3", "root-4"]


def test_threads_do_not_share_span_stacks(tracer):
    seen = {}

    def worker():
        with trace.span("thread-root") as span:
            seen["trace_id"] = span.trace_id

    with trace.span("main-root") as main_root:
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # The other thread's root must NOT have nested under ours.
        assert main_root.children == []
    assert seen["trace_id"] != main_root.trace_id


# -- the session facade propagates trace ids --------------------------------------------


def test_prepare_to_execute_trace_propagation(tracer):
    with repro.connect() as session:
        session.put("r1", repro.parse_object("{[name: ada]}"))
        prepared = session.prepare("[r1: {[name: $who]}]")
        assert prepared.trace_id is not None
        prepared.execute(who="ada").all()
    roots = {span.name: span for span in tracer.traces()}
    execute_root = roots["session.execute"]
    assert execute_root.attrs["prepared_from"] == prepared.trace_id
    assert execute_root.trace_id != prepared.trace_id


def test_ad_hoc_execute_has_no_prepared_link(tracer):
    with repro.connect() as session:
        session.put("r1", repro.parse_object("{[name: ada]}"))
        session.query("[r1: {[name: X]}]")
    roots = [span for span in tracer.traces() if span.name == "session.execute"]
    assert roots and "prepared_from" not in roots[0].attrs


# -- format_ns ---------------------------------------------------------------------------


def test_format_ns_scales():
    assert format_ns(None) == "?"
    assert format_ns(812) == "812ns"
    assert format_ns(12_345) == "12.3µs"
    assert format_ns(4_500_000) == "4.5ms"
    assert format_ns(1_240_000_000) == "1.24s"


# -- counters and gauges -----------------------------------------------------------------


def test_counter_is_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 42


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12


# -- histogram bucketing -----------------------------------------------------------------


def test_histogram_buckets_are_inclusive_upper_bounds():
    histogram = Histogram("h", buckets=(10, 100, 1000))
    histogram.observe(10)  # exactly on a bound → that bucket, not the next
    histogram.observe(11)
    histogram.observe(1000)
    histogram.observe(5000)  # overflow bucket
    rendered = histogram.as_dict()
    assert rendered["count"] == 4
    assert rendered["buckets"] == {"10": 1, "100": 1, "1000": 1, "+inf": 1}
    assert rendered["min"] == 10 and rendered["max"] == 5000


def test_histogram_quantiles_report_bucket_upper_bounds():
    histogram = Histogram("h", buckets=(10, 100, 1000))
    for _ in range(99):
        histogram.observe(5)
    histogram.observe(500)
    assert histogram.quantile(0.5) == 10
    assert histogram.quantile(1.0) == 1000
    assert histogram.quantile(0.0) == 10
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_empty_histogram_has_no_quantiles():
    histogram = Histogram("h")
    assert histogram.quantile(0.5) is None
    rendered = histogram.as_dict()
    assert rendered["count"] == 0 and rendered["p95"] is None


def test_default_buckets_are_log_scale_nanoseconds():
    assert LATENCY_BUCKETS_NS[0] == 2**10
    assert LATENCY_BUCKETS_NS[-1] == 2**36
    ratios = {
        LATENCY_BUCKETS_NS[i + 1] // LATENCY_BUCKETS_NS[i]
        for i in range(len(LATENCY_BUCKETS_NS) - 1)
    }
    assert ratios == {2}


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=(100, 10))


# -- the registry ------------------------------------------------------------------------


def test_registry_get_or_create_returns_the_same_instrument():
    registry = MetricsRegistry(declare=False)
    assert registry.counter("x") is registry.counter("x")
    assert registry.histogram("y") is registry.histogram("y")
    assert registry.gauge("z") is registry.gauge("z")


def test_registry_predeclares_every_section():
    registry = MetricsRegistry()
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    for section in ("engine.", "session.", "store.index.", "store.wal.", "store.lock."):
        assert any(name.startswith(section) for name in counters), section
    assert "engine.round_ns" in snapshot["histograms"]
    assert "session.query_ns" in snapshot["histograms"]


def test_registry_reset_zeroes_but_keeps_declared_names():
    registry = MetricsRegistry()
    registry.counter("engine.runs").inc(7)
    registry.reset()
    assert registry.counter("engine.runs").value == 0
    assert "store.commits" in registry.snapshot()["counters"]


def test_record_engine_run_folds_stats():
    from repro.engine.stats import EngineStats

    registry = MetricsRegistry()
    stats = EngineStats(iterations=3, substitutions=5, strata=1)
    registry.record_engine_run(stats)
    assert registry.counter("engine.runs").value == 1
    assert registry.counter("engine.iterations").value == 3
    assert registry.counter("engine.substitutions").value == 5


# -- the one-document snapshot -----------------------------------------------------------


def test_snapshot_document_shape():
    import json

    document = repro.obs.snapshot(MetricsRegistry())
    assert document["schema"] == repro.obs.SNAPSHOT_SCHEMA
    assert set(document) == {"schema", "tracing", "counters", "gauges", "histograms"}
    assert document["tracing"]["enabled"] in (True, False)
    json.dumps(document)  # must be plain JSON all the way down


def test_snapshot_reports_tracing_state(tracer):
    with trace.span("one"):
        pass
    document = repro.obs.snapshot(MetricsRegistry())
    assert document["tracing"]["enabled"] is True
    assert document["tracing"]["finished_traces"] == 1
