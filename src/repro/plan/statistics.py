"""Attribute-path statistics: the optimizer's cardinality oracle.

One walk over a database object collects, per set reachable through tuple
attributes from the root (a *spine* set, the only kind a body plan scans):

* its **cardinality** — how many elements a :class:`~repro.plan.ir.ScanLeaf`
  at that path enumerates, and
* per attribute path *inside* its elements, the number of **distinct atoms**
  found there — the classic ``V(R, a)`` statistic, so an equality probe at
  that key path is estimated to keep ``cardinality / distinct`` elements.

The collection is O(size of the object) and runs once per engine run (and
once per EXPLAIN); estimates therefore describe the object the optimizer saw,
not the final closure — staleness costs ordering quality, never correctness,
because every leaf order computes the same substitution set (see
:mod:`repro.plan.ir`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.core.objects import Atom, ComplexObject, SetObject, TupleObject
from repro.store.paths import Path

__all__ = ["DatabaseStatistics", "DEFAULT_CARDINALITY"]

_ROOT = Path(())

#: Guess used for a set the statistics never saw (absent path, or no
#: statistics collected at all).  Deliberately modest: an unknown set should
#: neither look free nor dominate every known cost.
DEFAULT_CARDINALITY = 32.0

#: Cap on the per-key distinct-atom sets kept during collection; beyond this
#: the count saturates (the estimate is already "essentially unique").
_MAX_DISTINCT_TRACKED = 4096


@dataclass
class DatabaseStatistics:
    """Cardinalities and distinct-atom counts of one database object."""

    set_cardinalities: Dict[Path, int] = field(default_factory=dict)
    distinct_atoms: Dict[Tuple[Path, Path], int] = field(default_factory=dict)
    #: Optional :class:`~repro.lint.shapes.ProgramShapes` attached by the
    #: engine: when a path was never profiled, a shape-derived bound (a dead
    #: region estimates 0, a finite ``max_card`` caps the guess) beats the
    #: flat :data:`DEFAULT_CARDINALITY`.  Grounded inferences only.
    shapes: object = None

    # -- collection -----------------------------------------------------------------
    @classmethod
    def collect(cls, database: ComplexObject) -> "DatabaseStatistics":
        """Walk ``database`` once and record every spine set's statistics."""
        stats = cls()
        distinct: Dict[Tuple[Path, Path], Set[Atom]] = {}

        def walk_spine(value: ComplexObject, path: Path) -> None:
            if isinstance(value, TupleObject):
                for name, item in value.items():
                    walk_spine(item, path.child(name))
            elif isinstance(value, SetObject):
                stats.set_cardinalities[path] = len(value.elements)
                for element in value.elements:
                    walk_element(element, path, _ROOT)

        def walk_element(value: ComplexObject, set_path: Path, key_path: Path) -> None:
            # Mirror repro.engine.indexes.element_keys: key paths descend
            # through the element's tuple attributes only.
            if isinstance(value, Atom):
                bucket = distinct.setdefault((set_path, key_path), set())
                if len(bucket) < _MAX_DISTINCT_TRACKED:
                    bucket.add(value)
            elif isinstance(value, TupleObject):
                for name, item in value.items():
                    walk_element(item, set_path, key_path.child(name))

        walk_spine(database, _ROOT)
        stats.distinct_atoms = {key: len(atoms) for key, atoms in distinct.items()}
        return stats

    # -- estimates ------------------------------------------------------------------
    def cardinality(self, set_path: Path) -> float:
        """Estimated element count of the set at ``set_path``.

        Resolution order: the profiled count, then a shape-derived bound
        (when a grounded shape inference is attached), then
        :data:`DEFAULT_CARDINALITY`.
        """
        known = self.set_cardinalities.get(set_path)
        if known is not None:
            return float(known)
        if self.shapes is not None and getattr(self.shapes, "grounded", False):
            bound = self.shapes.set_cardinality(set_path)
            if bound is not None:
                return bound
        return DEFAULT_CARDINALITY

    def distinct(self, set_path: Path, key_path: Path) -> float:
        """Distinct atoms at ``key_path`` inside the elements at ``set_path``.

        Falls back to the square root of the cardinality (the textbook guess
        for an unknown attribute) so an unprofiled key still reads as somewhat
        selective.
        """
        known = self.distinct_atoms.get((set_path, key_path))
        if known is not None and known > 0:
            return float(known)
        return max(1.0, self.cardinality(set_path) ** 0.5)

    def equality_estimate(self, set_path: Path, key_path: Path) -> float:
        """Estimated elements surviving an equality probe at ``key_path``."""
        cardinality = self.cardinality(set_path)
        return max(1.0, cardinality / self.distinct(set_path, key_path))

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """A JSON-friendly snapshot (string paths), used by tests and tooling."""
        return {
            "cardinalities": {
                str(path) or ".": float(count)
                for path, count in sorted(
                    self.set_cardinalities.items(), key=lambda item: str(item[0])
                )
            },
            "distinct": {
                f"{str(set_path) or '.'}::{key_path}": float(count)
                for (set_path, key_path), count in sorted(
                    self.distinct_atoms.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
                )
            },
        }
