"""Instrumentation for the evaluation engine.

Every engine run fills an :class:`EngineStats` record so benchmarks, the CLI
and tests can see *why* a strategy was fast or slow: how many rounds ran, how
many formula-against-witness match attempts were made, how often a match index
answered a lookup, and how much the scheduler could avoid re-iterating.

The record is deliberately a plain mutable dataclass of counters — the engine
increments fields directly on its hot path, and :meth:`EngineStats.as_dict`
snapshots them for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters collected while evaluating a rule set.

    Attributes
    ----------
    iterations:
        Total evaluation rounds, counting each application of a stratum's
        rules (recursive strata contribute one round per fixpoint iteration,
        non-recursive strata one round each).
    strata:
        Number of strongly-connected components the scheduler evaluated.
    recursive_strata:
        How many of those required fixpoint iteration.
    delta_matches:
        Rule-body evaluations restricted to the previous round's delta.
    full_matches:
        Rule-body evaluations against the whole database (round one of each
        recursive stratum, non-recursive rules, and correctness fallbacks for
        bodies that cannot be delta-decomposed).
    match_attempts:
        Individual (element formula, witness element) match trials.
    substitutions:
        Derivation-maximal substitutions found across all rule evaluations.
    subobjects_derived:
        Head instantiations contributed to the database (before the union
        absorbs duplicates and dominated results).
    index_hits:
        Match-index lookups that answered with a candidate list.
    index_misses:
        Lookups where keys existed but no index could answer (full scan).
    full_match_fallbacks:
        Delta rounds that had to fall back to full matching because the rule
        body could not be delta-decomposed (or no sound per-path delta
        existed) — the silent de-optimizations ``fallback_rules`` attributes
        to individual rules.
    fallback_rules:
        Per-rule fallback counts, keyed by the rule's name (or its text when
        unnamed); empty when every body ran delta-incrementally.
    rules_pruned:
        Rules the shape analysis proved statically empty against the input
        database: their bodies were never executed in any round.
    """

    iterations: int = 0
    strata: int = 0
    recursive_strata: int = 0
    delta_matches: int = 0
    full_matches: int = 0
    match_attempts: int = 0
    substitutions: int = 0
    subobjects_derived: int = 0
    index_hits: int = 0
    index_misses: int = 0
    full_match_fallbacks: int = 0
    fallback_rules: Dict[str, int] = field(default_factory=dict)
    rules_pruned: int = 0

    def count_fallback(self, rule) -> None:
        """Record one full-matching fallback attributed to ``rule``."""
        self.full_match_fallbacks += 1
        label = getattr(rule, "name", None) or rule.to_text()
        self.fallback_rules[label] = self.fallback_rules.get(label, 0) + 1

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot of every counter (stable key order)."""
        return {
            "iterations": self.iterations,
            "strata": self.strata,
            "recursive_strata": self.recursive_strata,
            "delta_matches": self.delta_matches,
            "full_matches": self.full_matches,
            "match_attempts": self.match_attempts,
            "substitutions": self.substitutions,
            "subobjects_derived": self.subobjects_derived,
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "full_match_fallbacks": self.full_match_fallbacks,
            "rules_pruned": self.rules_pruned,
        }

    def summary(self) -> str:
        """One-line human-readable rendering used by the CLI."""
        text = (
            f"{self.iterations} rounds over {self.strata} strata"
            f" ({self.recursive_strata} recursive),"
            f" {self.match_attempts} match attempts,"
            f" {self.delta_matches} delta / {self.full_matches} full rule evaluations,"
            f" {self.index_hits} index hits"
        )
        if self.rules_pruned:
            text += f", {self.rules_pruned} rules pruned by shape analysis"
        if self.full_match_fallbacks:
            worst = sorted(
                self.fallback_rules.items(), key=lambda item: (-item[1], item[0])
            )
            detail = ", ".join(f"{label}: {count}" for label, count in worst[:3])
            text += (
                f", {self.full_match_fallbacks} full-matching fallbacks ({detail})"
            )
        return text
