#!/usr/bin/env python3
"""A document-retrieval store over schema-less complex objects.

The paper's second motivating application is office automation / document
retrieval: documents are heterogeneous (missing attributes, nested sections,
keyword sets) and do not fit a rigid schema.  This example runs a small
document database end to end:

* load a generated collection into a file-backed :class:`ObjectDatabase`;
* *discover* a schema from the data (the paper's future-work item 4) and
  enforce it on later writes;
* build a path index on keywords and compare indexed vs scan lookups;
* answer content queries with calculus formulae and restructure the results
  with rules (an inverted keyword index built by a rule);
* run a transactional multi-document update.

Run with::

    python examples/document_store.py [documents]
"""

import sys
import tempfile
import time

from repro import parse_formula, parse_object, parse_rule
from repro.api import Session
from repro.core.builder import obj
from repro.core.errors import SchemaError
from repro.schema.inference import infer_type
from repro.store.database import ObjectDatabase
from repro.store.storage import FileStorage
from repro.workloads import make_document_collection


def main() -> None:
    documents = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    collection = make_document_collection(documents, 4, 5, rng=7)

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        path = handle.name
    store = ObjectDatabase(FileStorage(path))
    session = Session(database=store)  # the query facade over the store
    store.put("library", collection)
    print(f"Stored {documents} documents in {path}")

    # --- schema discovery and enforcement --------------------------------------------
    discovered = infer_type(collection)
    store.declare_schema("library", discovered)
    print("\nDiscovered schema (truncated):")
    print("  " + discovered.to_text()[:110] + "...")
    try:
        store.put("library", obj({"docs": [{"title": 42}]}))
    except SchemaError as error:
        print(f"  non-conforming write rejected: {str(error)[:90]}...")
    store.put("library", collection)  # restore the conforming value

    # --- content queries ---------------------------------------------------------------
    query = parse_formula("[docs: {[title: T, sections: {[keywords: {lattice}]}]}]")
    start = time.perf_counter()
    result = session.query(query, against="library")
    elapsed = (time.perf_counter() - start) * 1000
    hits = 0 if result.is_bottom else len(result.get("docs"))
    print(f"\nDocuments mentioning 'lattice': {hits}  ({elapsed:.2f} ms, calculus formula)")

    # Documents by a given author (some documents have no author at all).
    by_author = session.query("[docs: {[title: T, author: mary]}]", against="library")
    authored = 0 if by_author.is_bottom else len(by_author.get("docs"))
    print(f"Documents authored by mary: {authored}")

    # --- restructuring with a rule: an inverted keyword index --------------------------
    rule = parse_rule(
        "[keyword_index: {[keyword: K, title: T]}] :-"
        " [docs: {[title: T, sections: {[keywords: {K}]}]}]"
    )
    start = time.perf_counter()
    inverted = rule.apply(store["library"])
    elapsed = (time.perf_counter() - start) * 1000
    pairs = inverted.get("keyword_index")
    print(f"\nInverted keyword index built by one rule: {len(pairs)} (keyword, title) pairs"
          f" ({elapsed:.2f} ms)")
    store.put("keyword_index", pairs)

    # --- indexed lookup vs scan ---------------------------------------------------------
    store.create_index("keyword")
    probe = parse_object("[keyword: lattice]")
    start = time.perf_counter()
    scan_matches = store.find(probe)
    scan_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    indexed_matches = store.find(probe, path="keyword")
    indexed_ms = (time.perf_counter() - start) * 1000
    print(f"Find objects containing [keyword: lattice]: scan {scan_ms:.2f} ms,"
          f" indexed {indexed_ms:.2f} ms, same answer: {scan_matches == indexed_matches}")

    # --- transactional update -----------------------------------------------------------
    with store.transaction() as txn:
        txn.put("catalog", obj({"documents": documents, "indexed": True}))
        txn.put("audit", obj([{"action": "reindex", "by": "librarian"}]))
    print(f"\nTransactional metadata written: {store['catalog']}")

    store.close()
    print("Store closed; the JSON log can be reopened with FileStorage(path).")


if __name__ == "__main__":
    main()
