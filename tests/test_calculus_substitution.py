"""Unit tests for substitutions and instantiation (repro.calculus.substitution)."""

import pytest

from repro.core.builder import obj
from repro.core.objects import BOTTOM, TOP
from repro.core.order import is_subobject
from repro.calculus.substitution import Substitution, instantiate
from repro.calculus.terms import formula, var


class TestSubstitutionBasics:
    def test_mapping_protocol(self):
        sigma = Substitution({"X": obj(1), "Y": obj("a")})
        assert sigma["X"] == obj(1)
        assert sigma.get("Z") is None
        assert "Y" in sigma and "Z" not in sigma
        assert len(sigma) == 2
        assert sorted(sigma) == ["X", "Y"]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Substitution()["X"]

    def test_equality_and_hash(self):
        assert Substitution({"X": obj(1)}) == Substitution({"X": obj(1)})
        assert hash(Substitution({"X": obj(1)})) == hash(Substitution({"X": obj(1)}))
        assert Substitution({"X": obj(1)}) != Substitution({"X": obj(2)})

    def test_rejects_non_objects(self):
        with pytest.raises(TypeError):
            Substitution({"X": 1})

    def test_bind_and_restrict(self):
        sigma = Substitution({"X": obj(1)})
        assert sigma.bind("Y", obj(2))["Y"] == obj(2)
        assert "X" not in sigma.bind("Y", obj(2)).restrict(["Y"])


class TestMeet:
    def test_disjoint_domains_merge(self):
        left = Substitution({"X": obj(1)})
        right = Substitution({"Y": obj(2)})
        merged = left.meet(right)
        assert merged["X"] == obj(1) and merged["Y"] == obj(2)

    def test_shared_variable_intersects(self):
        left = Substitution({"X": obj({"a": 1, "b": 2})})
        right = Substitution({"X": obj({"b": 2, "c": 3})})
        assert left.meet(right)["X"] == obj({"b": 2})

    def test_conflicting_atoms_meet_to_bottom(self):
        assert Substitution({"X": obj(1)}).meet(Substitution({"X": obj(2)}))["X"] is BOTTOM


class TestInstantiate:
    def test_constants_untouched(self):
        assert instantiate(formula({"a": 1}), Substitution()) == obj({"a": 1})

    def test_variables_replaced(self):
        target = formula({"r": [var("X")], "s": var("Y")})
        sigma = Substitution({"X": obj(1), "Y": obj([2])})
        assert instantiate(target, sigma) == obj({"r": [1], "s": [2]})

    def test_unbound_variables_default_to_bottom(self):
        target = formula({"a": var("X"), "b": 2})
        assert instantiate(target, Substitution()) == obj({"b": 2})

    def test_unbound_variables_can_be_errors(self):
        with pytest.raises(KeyError):
            instantiate(var("X"), Substitution(), default=None)

    def test_top_binding_collapses(self):
        assert instantiate(formula({"a": var("X")}), Substitution({"X": TOP})) is TOP

    def test_monotone_in_the_substitution(self):
        # The key property behind the matching engine: growing bindings grows
        # the instantiation in the sub-object order.
        target = formula({"r": [var("X")], "s": {"t": var("X")}})
        small = Substitution({"X": obj({"a": 1})})
        large = Substitution({"X": obj({"a": 1, "b": 2})})
        assert is_subobject(instantiate(target, small), instantiate(target, large))

    def test_apply_helper(self):
        sigma = Substitution({"X": obj(3)})
        assert sigma.apply(formula([var("X")])) == obj([3])
