"""Store-side pushdown: query restriction, index short-circuit, find prefilter."""

import pytest

from repro import is_subobject, parse_formula, parse_object
# The oracle must stay independent of the session pipeline the store's
# query shim routes through, so it is the calculus baseline interpret.
from repro.calculus.interpretation import interpret
from repro.core.objects import BOTTOM
from repro.store.database import ObjectDatabase
from repro.store.index import PathIndex


@pytest.fixture
def populated():
    database = ObjectDatabase()
    for position in range(20):
        database.put(
            f"obj{position}",
            parse_object(f"[tag: {{t{position % 4}}}, num: {position}]"),
        )
    database.put(
        "family",
        parse_object(
            "[family: {[name: abraham, kids: {isaac}], [name: sarah, kids: {isaac}]}]"
        ),
    )
    return database


class TestQueryPushdown:
    def test_tuple_query_counts_a_root_pushdown(self, populated):
        before = populated.access_stats["query_root_pushdowns"]
        populated.query("[family: [family: {[name: X]}]]")
        assert populated.access_stats["query_root_pushdowns"] == before + 1

    def test_pushdown_answer_equals_full_snapshot_interpretation(self, populated):
        for source in (
            "[family: [family: {[name: X]}]]",
            "[obj3: [tag: {T}]]",
            "[missing: {X}]",
            "[obj1: [num: N], obj2: [num: M]]",
        ):
            query = parse_formula(source)
            assert populated.query(query) == interpret(query, populated.as_object())

    def test_non_tuple_query_falls_back_to_the_snapshot(self, populated):
        before = populated.access_stats["query_scans"]
        query = parse_formula("X")
        assert populated.query(query) == interpret(query, populated.as_object())
        assert populated.access_stats["query_scans"] == before + 1

    def test_allow_bottom_pushdown_agrees(self, populated):
        query = parse_formula("[family: [family: {[name: X, kids: {K}]}]]")
        assert populated.query(query, allow_bottom=True) == interpret(
            query, populated.as_object(), allow_bottom=True
        )

    def test_top_valued_object_disables_pushdown(self, populated):
        # A stored ⊤ collapses as_object() to ⊤ even for names the formula
        # never mentions; the pushdown must fall back to the snapshot path.
        populated.put("anything", parse_object("top"))
        query = parse_formula("[family: [family: {[name: X]}]]")
        assert populated.query(query) == interpret(query, populated.as_object())
        assert populated.query(query).is_top
        # Removing the ⊤ value re-enables the pushdown.
        populated.remove("anything")
        before = populated.access_stats["query_root_pushdowns"]
        assert populated.query(query) == interpret(query, populated.as_object())
        assert populated.access_stats["query_root_pushdowns"] == before + 1

    def test_against_still_targets_one_object(self, populated):
        query = parse_formula("[family: {[name: X]}]")
        assert populated.query(query, against="family") == interpret(
            query, populated["family"]
        )


class TestIndexShortCircuit:
    def test_absent_atom_answers_bottom_from_the_index(self, populated):
        populated.create_index("family.name")
        before = populated.access_stats["query_index_shortcircuits"]
        result = populated.query("[family: [family: {[name: nobody, kids: K]}]]")
        assert result is BOTTOM
        assert populated.access_stats["query_index_shortcircuits"] == before + 1

    def test_present_atom_is_not_shortcircuited(self, populated):
        populated.create_index("family.name")
        result = populated.query("[family: [family: {[name: abraham, kids: K]}]]")
        assert not result.is_bottom

    def test_shortcircuit_agrees_with_interpretation(self, populated):
        populated.create_index("family.name")
        query = parse_formula("[family: [family: {[name: nobody]}]]")
        assert populated.query(query) == interpret(query, populated.as_object())

    def test_top_at_indexed_path_is_wildcarded_not_missed(self, populated):
        populated.create_index("family.name")
        populated.put("weird", parse_object("[family: {[name: top, kids: {x}]}]"))
        query = parse_formula("[weird: [family: {[name: anyname]}]]")
        # ⊤ dominates any name, so the index must not refute this query.
        assert populated.query(query) == interpret(query, populated.as_object())
        assert not populated.query(query).is_bottom


class TestFindPrefilter:
    def test_prefilter_counts_and_agrees_with_scan(self, populated):
        pattern = parse_object("[tag: {t3}]")
        expected = populated.find(pattern)
        assert populated.access_stats["find_scans"] >= 1
        populated.create_index("tag")
        prefiltered = populated.find(pattern)
        stats = populated.access_stats
        assert stats["find_index_prefilters"] >= 1
        assert prefiltered == expected

    def test_unconstrained_pattern_still_scans(self, populated):
        populated.create_index("tag")
        before = populated.access_stats["find_scans"]
        names = populated.find(parse_object("[num: 7]"))
        assert names == ["obj7"]
        assert populated.access_stats["find_scans"] == before + 1

    def test_multiple_indexes_intersect(self, populated):
        populated.create_index("tag")
        populated.create_index("num")
        names = populated.find(parse_object("[tag: {t3}, num: 7]"))
        assert names == ["obj7"]
        assert populated.access_stats["find_index_prefilters"] >= 1

    def test_wildcard_objects_survive_the_prefilter(self, populated):
        populated.create_index("tag")
        populated.put("anything", parse_object("[tag: top]"))
        names = populated.find(parse_object("[tag: {t2}]"))
        assert "anything" in names

    def test_explicit_path_behaviour_is_preserved(self, populated):
        populated.create_index("tag")
        names = populated.find(parse_object("[tag: {t1}]"), path="tag")
        scan = [
            name
            for name in populated.names()
            if is_subobject(parse_object("[tag: {t1}]"), populated[name])
        ]
        assert names == scan


class TestPathIndexWildcards:
    def test_lookup_includes_wildcards(self):
        index = PathIndex("family.name")
        index.add("normal", parse_object("[family: {[name: abraham]}]"))
        index.add("wild", parse_object("[family: top]"))
        assert index.lookup(parse_object("abraham")) == {"normal", "wild"}
        assert index.lookup(parse_object("zzz")) == {"wild"}

    def test_wildcard_cleared_on_remove_and_overwrite(self):
        index = PathIndex("name")
        index.add("w", parse_object("top"))
        assert "w" in index.lookup(parse_object("anything"))
        index.add("w", parse_object("[name: fixed]"))
        assert "w" not in index.lookup(parse_object("anything"))
        index.remove("w")
        assert index.lookup(parse_object("fixed")) == frozenset()

    def test_set_descended_keys_are_not_reduced_away(self):
        # The two elements are incomparable, but their k-values dominate each
        # other: folding the collected values into a normalized set (as
        # get_path does) would absorb [a: 1] and lose its key — the index's
        # own traversal must keep both.
        index = PathIndex("items.k")
        index.add(
            "both",
            parse_object("[items: {[k: [a: 1], t: 1], [k: [a: 1, b: 2], t: 0]}]"),
        )
        assert "both" in index.lookup(parse_object("[a: 1]"))
        assert "both" in index.lookup(parse_object("[a: 1, b: 2]"))


class TestCloseUnderEngines:
    RULES = "[doa: {abraham}]. [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]."

    def make_db(self):
        from repro.workloads import make_genealogy

        database = ObjectDatabase()
        database.put("family_tree", make_genealogy(3, 2).family_object)
        return database

    def test_engines_and_baseline_agree(self):
        from repro import parse_program
        from repro.calculus.rules import RuleSet

        rules = RuleSet([r for r in parse_program(self.RULES)if not r.is_fact])
        seminaive = self.make_db().close_under(rules, against="family_tree")
        naive = self.make_db().close_under(rules, against="family_tree", engine="naive")
        baseline = self.make_db().close_under(rules, against="family_tree", engine=None)
        assert seminaive.value == naive.value == baseline.value
        assert seminaive.converged

    def test_inflationary_guard_falls_back_to_close(self):
        from repro import parse_program
        from repro.calculus.rules import RuleSet

        rules = RuleSet([r for r in parse_program(self.RULES) if not r.is_fact])
        database = self.make_db()
        result = database.close_under(
            rules, against="family_tree", inflationary=True
        )
        assert result.converged
