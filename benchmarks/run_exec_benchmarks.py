#!/usr/bin/env python
"""Emit the machine-readable executor benchmark record ``BENCH_exec.json``.

Companion to ``run_plan_benchmarks.py`` (planner wins): this script pins the
batch-at-a-time vectorized executor (:mod:`repro.plan.execute`) against the
binding-at-a-time scalar reference implementation it replaced, on the same
workload shapes ``BENCH_plan.json`` records —

* **join** — the BENCH_plan three-relation chain join, matched through both
  executors on the *source-ordered* plan (where per-partial executor work
  dominates; the cost-ordered plan collapses the join to a handful of rows,
  so it measures fixed dispatch overhead and is reported without a floor);
* **closure** — a semi-naive transitive-closure replay: the per-round
  ``match_plan`` calls (each delta frontier as one batch) replayed for both
  executors on identical inputs, timing only executor work — the engine's
  refresh/interning cost is identical either way and would dilute the
  comparison;
* **streaming first row** — the BENCH_api cursor workload's first-row
  latency under the vector executor must stay within 1.2x of the scalar
  depth-first walk (the ramped chunk schedule starts at one partial, so
  batching must not tax time-to-first-row).

Usage::

    PYTHONPATH=src python benchmarks/run_exec_benchmarks.py [--smoke] [--output PATH]

``--smoke`` shrinks sizes and repetitions so CI can exercise the harness in
seconds; in that mode the floors are recorded but not enforced.  In full mode
the script exits non-zero unless the join and closure speedups meet their
``TARGET_SPEEDUPS`` floors and first-row latency stays under
``MAX_FIRST_ROW_RATIO``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: The tentpole floors: vectorized over scalar on the BENCH_plan workloads.
TARGET_SPEEDUPS = {"join_vectorized": 3.0, "closure_vectorized": 3.0}

#: Streaming must not pay for batching: vector first-row over scalar first-row.
MAX_FIRST_ROW_RATIO = 1.2


def _median_ns(func, *, repeats: int, number: int) -> float:
    """Median wall time of one call, measured over ``repeats`` batches."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for _ in range(number):
            func()
        samples.append((time.perf_counter_ns() - start) / number)
    return statistics.median(samples)


def _bench_join(smoke: bool, repeats: int, record) -> dict:
    """The BENCH_plan chain join, scalar vs vector on both leaf orders."""
    from repro import parse_formula, parse_object
    from repro.core.objects import BOTTOM
    from repro.engine.indexes import IndexStore
    from repro.engine.stats import EngineStats
    from repro.plan import DatabaseStatistics, compile_body, match_plan, optimize_body

    chain_rows = 60 if smoke else 400
    join_domain = max(8, chain_rows // 10)
    tag_domain = max(16, chain_rows // 5)

    def rows(maker):
        return ", ".join(maker(i) for i in range(chain_rows))

    chain_db = parse_object(
        "[a_r: {" + rows(lambda i: f"[x: {i}, y: y{i % join_domain}]") + "},"
        " b_r: {" + rows(lambda i: f"[y: y{i % join_domain}, z: z{i % join_domain}]") + "},"
        " c_r: {" + rows(lambda i: f"[z: z{i % join_domain}, tag: t{i % tag_domain}]") + "}]"
    )
    body = parse_formula(
        "[a_r: {[x: X, y: Y]}, b_r: {[y: Y, z: Z]}, c_r: {[z: Z, tag: t0]}]"
    )
    indexes = IndexStore(EngineStats())
    indexes.register_body(body)
    indexes.refresh(BOTTOM, chain_db)
    source_plan = compile_body(body)
    optimized_plan = optimize_body(source_plan, DatabaseStatistics.collect(chain_db))

    baseline = match_plan(source_plan, chain_db, indexes=indexes, executor="scalar")
    assert match_plan(source_plan, chain_db, indexes=indexes, executor="vector") == baseline
    assert match_plan(optimized_plan, chain_db, indexes=indexes, executor="vector") == baseline

    objects = 3 * chain_rows
    scalar = record(
        "join_source_scalar",
        lambda: match_plan(source_plan, chain_db, indexes=indexes, executor="scalar"),
        repeats=repeats, number=3, objects=objects,
    )
    vector = record(
        "join_source_vector",
        lambda: match_plan(source_plan, chain_db, indexes=indexes, executor="vector"),
        repeats=repeats, number=10, objects=objects,
    )
    # The cost-ordered plan starts from the selective static probe, so the
    # whole join survives ~10 rows: fixed dispatch dominates and the two
    # executors converge.  Recorded for the parity story, not floored.
    ordered_scalar = record(
        "join_ordered_scalar",
        lambda: match_plan(optimized_plan, chain_db, indexes=indexes, executor="scalar"),
        repeats=repeats, number=20, objects=objects,
    )
    ordered_vector = record(
        "join_ordered_vector",
        lambda: match_plan(optimized_plan, chain_db, indexes=indexes, executor="vector"),
        repeats=repeats, number=20, objects=objects,
    )
    return {
        "join_vectorized": round(scalar / vector, 2),
        "join_ordered_vectorized": round(ordered_scalar / ordered_vector, 2),
    }


def _bench_closure(smoke: bool, repeats: int, record) -> dict:
    """Semi-naive transitive-closure replay, timing only the executor.

    The rounds are constructed once (delta frontiers, evolving database
    snapshots, refreshed indexes — all identical for both executors); the
    timed replay then runs only the per-round ``match_plan`` calls, i.e.
    exactly the work the executor swap changes.
    """
    from repro import parse_formula, parse_object
    from repro.core.objects import BOTTOM
    from repro.engine.delta import DeltaPosition
    from repro.engine.indexes import IndexStore
    from repro.engine.stats import EngineStats
    from repro.plan import DatabaseStatistics, compile_body, match_plan, optimize_body
    from repro.plan.ir import ScanLeaf

    nodes = 30 if smoke else 120
    edges = sorted({(i, i + 1) for i in range(nodes - 1)} | {
        (i, (i * 7 + 3) % nodes) for i in range(0, nodes, 4)
    })
    body = parse_formula("[edge: {[src: X, dst: Y]}, tc: {[src: Y, dst: Z]}]")
    tc_leaf = next(
        leaf
        for leaf in compile_body(body).leaves
        if isinstance(leaf, ScanLeaf) and str(leaf.path) == "tc"
    )
    position = DeltaPosition(path=tc_leaf.path, element_index=tc_leaf.element_index)

    def render(pairs):
        return "{" + ", ".join(f"[src: n{a}, dst: n{b}]" for a, b in sorted(pairs)) + "}"

    def pair_of(substitution):
        x = substitution["X"].to_text()
        z = substitution["Z"].to_text()
        return int(x[1:]), int(z[1:])

    edge_text = render(edges)
    tc = set(edges)
    delta = set(edges)
    rounds = []
    plan = None
    while delta:
        database = parse_object(f"[edge: {edge_text}, tc: {render(tc)}]")
        if plan is None:
            plan = optimize_body(
                compile_body(body), DatabaseStatistics.collect(database)
            )
        indexes = IndexStore(EngineStats())
        indexes.register_body(body)
        indexes.refresh(BOTTOM, database)
        # Interning makes re-parsed elements identical to the stored ones,
        # so these delta witnesses hit the executor exactly as
        # ``new_set_elements`` would hand them over.
        delta_objects = tuple(
            parse_object(f"[src: n{a}, dst: n{b}]") for a, b in sorted(delta)
        )
        rounds.append((database, delta_objects, indexes))
        matches = match_plan(
            plan, database, position=position, delta_elements=delta_objects,
            indexes=indexes, executor="scalar",
        )
        vector_matches = match_plan(
            plan, database, position=position, delta_elements=delta_objects,
            indexes=indexes, executor="vector",
        )
        assert vector_matches == matches
        fresh = {pair_of(sub) for sub in matches} - tc
        tc |= fresh
        delta = fresh

    def replay(executor):
        def run():
            for database, delta_objects, indexes in rounds:
                match_plan(
                    plan, database, position=position,
                    delta_elements=delta_objects, indexes=indexes,
                    executor=executor,
                )
        return run

    # ``objects`` is the closure size; the recorded medians cover the whole
    # replay (every round of one fixpoint, not a single round).
    objects = len(tc)
    scalar = record(
        "closure_rounds_scalar", replay("scalar"),
        repeats=repeats, number=1, objects=objects,
    )
    vector = record(
        "closure_rounds_vector", replay("vector"),
        repeats=repeats, number=1, objects=objects,
    )
    return {"closure_vectorized": round(scalar / vector, 2)}


def _bench_first_row(smoke: bool, repeats: int, record) -> dict:
    """The BENCH_api cursor workload's first row, vector vs scalar."""
    from repro import parse_formula, parse_object
    from repro.api import Session

    pair_rows = 10 if smoke else 24
    pairs = Session.over_object(
        parse_object(
            "[pairs: {" + ", ".join(
                f"[l: {i}, r: r{i}]" for i in range(pair_rows)
            ) + "}]"
        )
    )
    body = parse_formula("[pairs: {[l: X], [r: Y]}]")
    assert not pairs.execute(body).one().is_bottom

    def first_row(executor):
        def run():
            os.environ["REPRO_EXECUTOR"] = executor
            try:
                pairs.execute(body).one()
            finally:
                os.environ.pop("REPRO_EXECUTOR", None)
        return run

    vector = record(
        "first_row_vector", first_row("vector"),
        repeats=repeats, number=20, objects=pair_rows,
    )
    scalar = record(
        "first_row_scalar", first_row("scalar"),
        repeats=repeats, number=20, objects=pair_rows,
    )
    return {"first_row_ratio": round(vector / scalar, 3)}


def run_suite(smoke: bool) -> dict:
    repeats = 3 if smoke else 9
    results = {}

    def record(name, func, *, repeats, number, objects):
        median = _median_ns(func, repeats=repeats, number=(1 if smoke else number))
        results[name] = {"median_ns": round(median, 1), "objects": objects}
        return median

    speedups = {}
    speedups.update(_bench_join(smoke, repeats, record))
    speedups.update(_bench_closure(smoke, repeats, record))
    speedups.update(_bench_first_row(smoke, repeats, record))
    return {
        "schema": "bench-exec/v1",
        "mode": "smoke" if smoke else "full",
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "target_speedups": TARGET_SPEEDUPS,
        "max_first_row_ratio": MAX_FIRST_ROW_RATIO,
        "benchmarks": results,
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI mode, no enforcement")
    parser.add_argument("--output", default="BENCH_exec.json", help="where to write the record")
    args = parser.parse_args(argv)

    record = run_suite(args.smoke)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, stats in sorted(record["benchmarks"].items()):
        print(f"{name:28s} {stats['median_ns']:>14,.0f} ns  ({stats['objects']} objects)")
    for name, ratio in sorted(record["speedups"].items()):
        target = TARGET_SPEEDUPS.get(name)
        suffix = f" (floor {target:.0f}x)" if target else ""
        print(f"speedup {name:24s} {ratio:>8.2f}{suffix}")
    print(f"wrote {args.output}")

    if not args.smoke:
        failing = {
            name: ratio
            for name, ratio in record["speedups"].items()
            if name in TARGET_SPEEDUPS and ratio < TARGET_SPEEDUPS[name]
        }
        if failing:
            print(f"FAIL: speedups below floor: {failing}", file=sys.stderr)
            return 1
        ratio = record["speedups"]["first_row_ratio"]
        if ratio > MAX_FIRST_ROW_RATIO:
            print(
                f"FAIL: vector first-row latency is {ratio:.2f}x the scalar"
                f" walk (ceiling {MAX_FIRST_ROW_RATIO:.1f}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
