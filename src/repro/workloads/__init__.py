"""Synthetic workload generators.

The paper needs no external data, but its motivating applications (CAD,
office automation, document retrieval, knowledge bases) and its examples
(relations, nested relations, genealogies) suggest concrete data shapes.  The
generators below synthesise those shapes with controlled size parameters and a
seeded RNG, and every benchmark and property test draws its inputs from here
(substitution note in ``DESIGN.md``: generated hierarchies stand in for the
paper's motivating real-world CAD/office datasets, exercising the same
nesting and recursion code paths).

* :mod:`repro.workloads.objects` — random (reduced) complex objects with
  controlled depth/fan-out, and redundancy-controlled sets for the reduction
  benchmark;
* :mod:`repro.workloads.relations` — flat relations with controlled
  cardinality and join selectivity, in both relational and complex-object
  form;
* :mod:`repro.workloads.genealogy` — family trees in the exact shape of the
  paper's Example 4.5, with flat, Datalog and complex-object views plus the
  expected answer;
* :mod:`repro.workloads.hierarchy` — part (bill-of-material) assemblies and
  document collections, the deep-nesting workloads of the introduction.
"""

from repro.workloads.genealogy import Genealogy, make_genealogy
from repro.workloads.hierarchy import make_document_collection, make_part_hierarchy
from repro.workloads.objects import (
    random_atom,
    random_object,
    random_set_with_redundancy,
    random_tuple,
)
from repro.workloads.relations import JoinWorkload, make_join_workload, make_relation

__all__ = [
    "Genealogy",
    "JoinWorkload",
    "make_document_collection",
    "make_genealogy",
    "make_join_workload",
    "make_part_hierarchy",
    "make_relation",
    "random_atom",
    "random_object",
    "random_set_with_redundancy",
    "random_tuple",
]
