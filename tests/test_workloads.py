"""Unit tests for the workload generators (repro.workloads)."""

import random

import pytest

from repro.core.depth import depth
from repro.core.objects import ComplexObject, SetObject, TupleObject
from repro.core.reduction import is_reduced
from repro.relational.bridge import database_to_object
from repro.workloads import (
    make_document_collection,
    make_genealogy,
    make_join_workload,
    make_part_hierarchy,
    make_relation,
    random_atom,
    random_object,
    random_set_with_redundancy,
    random_tuple,
)


class TestRandomObjects:
    def test_deterministic_with_seed(self):
        assert random_object(42, max_depth=4) == random_object(42, max_depth=4)
        assert random_atom(7) == random_atom(7)

    def test_depth_bound_respected(self):
        for seed in range(20):
            value = random_object(seed, max_depth=3)
            assert depth(value) <= 3 + 1  # empty containers report depth 2

    def test_objects_are_reduced(self):
        for seed in range(20):
            assert is_reduced(random_object(seed, max_depth=4))

    def test_random_tuple_is_a_tuple(self):
        assert isinstance(random_tuple(3), (TupleObject,))

    def test_accepts_rng_instances(self):
        rng = random.Random(5)
        assert isinstance(random_object(rng), ComplexObject)

    def test_redundant_set_is_unreduced(self):
        raw = random_set_with_redundancy(1, base_size=10, redundancy=0.5)
        assert isinstance(raw, SetObject)
        assert len(raw) > 10
        assert not is_reduced(raw)

    def test_zero_redundancy_set_is_reduced(self):
        raw = random_set_with_redundancy(1, base_size=10, redundancy=0.0)
        assert len(raw) == 10
        assert is_reduced(raw)

    def test_redundancy_bounds_checked(self):
        with pytest.raises(ValueError):
            random_set_with_redundancy(1, redundancy=1.0)


class TestRelationWorkloads:
    def test_make_relation_shape(self):
        relation = make_relation(100, value_domain=5, rng=3)
        assert len(relation) == 100
        assert set(relation.attributes) == {"a", "b"}
        values = {row["b"] for row in relation}
        assert len(values) <= 5

    def test_join_workload_views_are_consistent(self):
        workload = make_join_workload(50, join_domain=10, rng=1)
        assert len(workload.left) == 50
        assert len(workload.right) == 50
        assert workload.as_object == database_to_object(workload.database)

    def test_join_workload_deterministic(self):
        first = make_join_workload(30, join_domain=5, rng=9)
        second = make_join_workload(30, join_domain=5, rng=9)
        assert first.as_object == second.as_object


class TestGenealogy:
    def test_population_size(self):
        tree = make_genealogy(3, 2)
        # 1 + 2 + 4 + 8 people in a complete binary tree of 3 generations.
        assert len(tree.people) == 15
        assert len(tree.parent_of) == 14
        assert tree.generations == 3

    def test_expected_descendants_cover_everyone(self):
        tree = make_genealogy(2, 3)
        assert tree.expected_descendants == frozenset(tree.people)

    def test_views_are_consistent(self):
        tree = make_genealogy(2, 2)
        assert len(tree.parent_relation) == len(tree.parent_of)
        family = tree.family_object.get("family")
        assert len(family) == len(tree.people)
        assert len(tree.datalog_program.facts) == len(tree.parent_of) + 1

    def test_degenerate_trees(self):
        assert len(make_genealogy(0, 2).people) == 1
        with pytest.raises(ValueError):
            make_genealogy(-1, 2)
        with pytest.raises(ValueError):
            make_genealogy(2, 0)


class TestHierarchies:
    def test_part_hierarchy_counts(self):
        hierarchy = make_part_hierarchy(2, 3, rng=0)
        # 1 + 3 + 9 parts.
        assert hierarchy.part_count == 13
        assert len(hierarchy.flat_database["part"]) == 13
        assert len(hierarchy.flat_database["component"]) == 12

    def test_nested_and_flat_agree_on_size(self):
        hierarchy = make_part_hierarchy(3, 2, rng=1)
        nested_leaves = _count_parts(hierarchy.nested_object)
        assert nested_leaves == hierarchy.part_count

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_part_hierarchy(-1, 2)
        with pytest.raises(ValueError):
            make_part_hierarchy(2, 0)

    def test_document_collection_shape(self):
        docs = make_document_collection(5, 3, 4, rng=2)
        collection = docs.get("docs")
        assert len(collection) == 5
        for document in collection:
            assert len(document.get("sections")) <= 3


def _count_parts(nested) -> int:
    total = 1
    for child in nested.get("components"):
        total += _count_parts(child)
    return total
