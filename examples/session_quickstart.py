#!/usr/bin/env python3
"""Session quickstart: connect → prepare → execute → stream → explain.

The session facade (:mod:`repro.api`) is the library's front door: one
object that owns a store (in-memory or durable WAL), a rule set, and a plan
cache keyed on the store's statistics version.  This walkthrough covers the
full client workflow:

1. ``repro.connect()`` — an in-memory session;
2. ``Session.prepare`` — parse + cost-optimize a ``$parameterized`` query
   once, re-execute it with different bindings with no re-planning;
3. streaming cursors — ``for match in cursor``, ``.one()``, ``.all()``;
4. ``.explain()`` — the plan and the store access path;
5. rules and closures — ``register`` + ``close()`` (the paper's ``R*(O)``),
   cached until the next commit;
6. ``repro.connect(path)`` — the same workflow over a durable WAL store
   (the CLI's ``store --db-path`` format).

Run with::

    python examples/session_quickstart.py [--db-path /tmp/session.wal]
"""

import argparse
import os
import tempfile

import repro


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def demo_memory_session() -> None:
    banner("1. An in-memory session: put, prepare, execute, stream")
    with repro.connect() as session:
        session.put("r1", repro.parse_object(
            "{[name: peter, age: 25], [name: john, age: 7], [name: mary, age: 13]}"
        ))
        session.put("r2", repro.parse_object(
            "{[name: john, address: austin], [name: mary, address: paris]}"
        ))

        # Prepare once: the query is parsed and cost-optimized now; $who is
        # bound per execution without re-planning.
        people = session.prepare("[r1: {[name: $who, age: A]}]")
        print("prepared:", people)
        for who in ("peter", "john", "mary"):
            print(f"  {who:6s} ->", people.execute(who=who).all().to_text())
        info = session.cache_info()
        print(f"plan cache: {info['plan_hits']} hits, {info['plan_misses']} misses")

        # Cursors stream lazily: the join below has many matches, but the
        # first arrives after walking a single alternative per leaf.
        banner("2. Streaming cursors")
        cursor = session.execute("[r1: {[name: X, age: A]}, r2: {[name: X, address: D]}]")
        print("first match:", cursor.one().to_text())
        print("full answer:", cursor.all().to_text())

        banner("3. EXPLAIN: the plan and the store access path")
        print(people.explain(who="peter"))

        # Rules close the database under R* (Definition 4.6); the closure is
        # cached on the store version, so repeated queries are free until the
        # next commit invalidates it.
        banner("4. Rules and cached closures")
        session.register(
            "[minors: {X}] :- [r1: {[name: X, age: 7]}].\n"
            "[minors: {X}] :- [r1: {[name: X, age: 13]}].\n"
        )
        print("closure:", session.close().value.to_text())
        print("minors: ", session.query("[minors: X]", on_closure=True).to_text())
        info = session.cache_info()
        print(f"closures: {info['closure_hits']} hits, {info['closure_misses']} misses")


def demo_wal_session(path: str) -> None:
    banner(f"5. The same workflow over a durable WAL store ({path})")
    with repro.connect(path) as session:
        session.put("family", repro.parse_object(
            "{[name: abraham, children: {isaac}], [name: isaac, children: {jacob}]}"
        ))
    # Re-open: the data survived (one fsynced WAL append per commit).
    with repro.connect(path) as session:
        print("names after re-open:", session.names())
        fathers = session.prepare("[family: {[name: $who, children: C]}]")
        print("abraham ->", fathers.execute(who="abraham").all().to_text())
        print(fathers.explain(who="abraham"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--db-path", help="WAL path for the durable demo")
    arguments = parser.parse_args()

    demo_memory_session()
    if arguments.db_path:
        demo_wal_session(arguments.db_path)
    else:
        with tempfile.TemporaryDirectory() as scratch:
            demo_wal_session(os.path.join(scratch, "session.wal"))


if __name__ == "__main__":
    main()
