"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. a fresh checkout running ``pytest`` directly), and registers
the shared hypothesis profile used by the property-based tests.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "repro",
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis is an optional test dependency
    pass
