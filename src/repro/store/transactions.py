"""Atomic, optimistically-concurrent transactions over the object database.

A :class:`Transaction` buffers writes and deletes against a snapshot of the
database and applies them atomically on :meth:`commit` — genuinely
all-or-nothing: every schema is validated and every change staged *before*
anything touches storage, and the batch then lands under the database's
exclusive write lock as one storage commit (a single WAL append + fsync on a
file-backed engine).  A commit that fails — schema violation, conflict,
storage error — leaves the database exactly as it was.

Reads inside the transaction see its own uncommitted writes first, then the
snapshot, which is remembered lazily per name.  At commit time the *whole*
snapshot (read set as well as write set) is validated against the current
state under the write lock: if any object the transaction observed has since
changed, the commit is rejected with
:class:`~repro.core.errors.ConflictError` — the retryable
:class:`TransactionError` subclass that
:class:`~repro.store.retry.RetryPolicy` and
:meth:`repro.api.Session.transact` catch to re-run the work (first committer
wins).  Because stored objects are hash-consed (PR 2), "changed" means
semantically changed — rewriting an identical object underneath the
transaction is not a conflict.

A failed commit deactivates the transaction, so the context-manager exit
never aborts a transaction that already tried to commit (no double-abort).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.errors import TransactionError
from repro.core.objects import ComplexObject

__all__ = ["Transaction"]

_DELETED = object()


class Transaction:
    """A buffered, atomically-committed set of changes to an :class:`ObjectDatabase`."""

    def __init__(self, database):
        self._database = database
        self._snapshot: Dict[str, Optional[ComplexObject]] = {}
        self._writes: Dict[str, object] = {}
        self._active = True

    # -- context manager --------------------------------------------------------------
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            # Already committed or aborted (possibly a commit that failed and
            # deactivated us) — there is nothing left to clean up.
            return False
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    # -- transactional reads/writes ----------------------------------------------------
    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("the transaction is no longer active")

    def _remember_snapshot(self, name: str) -> None:
        if name not in self._snapshot:
            self._snapshot[name] = self._database.get(name, default=None)

    def get(self, name: str, default=None):
        """Read an object, seeing this transaction's own writes first."""
        self._require_active()
        if name in self._writes:
            value = self._writes[name]
            return default if value is _DELETED else value
        self._remember_snapshot(name)
        value = self._snapshot[name]
        return default if value is None else value

    def put(self, name: str, value: ComplexObject) -> None:
        """Buffer a write."""
        self._require_active()
        if not isinstance(value, ComplexObject):
            raise TransactionError(
                f"only complex objects can be stored, got {type(value).__name__}"
            )
        self._remember_snapshot(name)
        self._writes[name] = value

    def delete(self, name: str) -> None:
        """Buffer a delete."""
        self._require_active()
        self._remember_snapshot(name)
        self._writes[name] = _DELETED

    def touched(self) -> Set[str]:
        """The names written or deleted by this transaction."""
        return set(self._writes)

    # -- lifecycle ----------------------------------------------------------------------
    def commit(self) -> None:
        """Validate everything, then apply the buffered changes as one batch.

        Schema checks for every write run before any change is applied; the
        snapshot validation and the apply step happen together under the
        database's write lock (see :meth:`ObjectDatabase.commit_batch`).  Any
        failure — :class:`~repro.core.errors.SchemaError`, a write-write
        :class:`~repro.core.errors.ConflictError`, a storage error — leaves
        the database untouched and this transaction inactive.
        """
        self._require_active()
        # Deactivate first: whatever happens below, this transaction is over,
        # and __exit__ must not try to abort it a second time.
        self._active = False
        changes = {
            name: None if value is _DELETED else value
            for name, value in self._writes.items()
        }
        self._database.commit_batch(changes, expected=dict(self._snapshot))

    def abort(self) -> None:
        """Discard the buffered changes."""
        self._require_active()
        self._writes.clear()
        self._active = False

    @property
    def active(self) -> bool:
        return self._active
