"""Nested (NF², non-first-normal-form) relations with ``nest`` and ``unnest``.

The related work the paper builds on — Jaeschke & Schek [6], Zaniolo [14],
Schek & Scholl [12] — relaxes first normal form by letting attribute values be
sets or whole sub-relations.  This module implements that intermediate model:

* a :class:`NestedRelation` is a set of nested rows; a nested row maps
  attribute names to atomic values, to ``None``, or to nested relations;
* :func:`nest` groups rows on the non-nested attributes and collects the
  grouped columns into a sub-relation;
* :func:`unnest` flattens a relation-valued attribute back out.

Nested relations sit strictly between the flat baseline and the paper's fully
general complex objects (which additionally allow heterogeneous sets, sets of
sets, and top-level atoms); the bridge converts them into complex objects so
the same data can be queried with the calculus.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.core.atoms import is_atom_value

__all__ = ["NestedRelation", "NestedRow", "nest", "unnest"]


class NestedRow:
    """An immutable nested row: values are atoms, ``None`` or nested relations."""

    __slots__ = ("_items", "_hash")

    def __init__(self, values: Mapping[str, object]):
        cleaned = {}
        for name, value in values.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"attribute names must be non-empty strings: {name!r}")
            if value is None or is_atom_value(value) or isinstance(value, NestedRelation):
                cleaned[name] = value
            elif isinstance(value, (list, tuple, set, frozenset)):
                # Convenience: a collection of dicts builds a sub-relation, a
                # collection of atoms builds a single-column sub-relation.
                cleaned[name] = NestedRelation.from_values(value)
            else:
                raise TypeError(
                    f"nested rows hold atoms, None or NestedRelation values;"
                    f" attribute {name!r} got {type(value).__name__}"
                )
        items = tuple(sorted(cleaned.items(), key=lambda item: item[0]))
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, key, value):
        raise AttributeError("NestedRow is immutable")

    def get(self, name: str, default=None):
        for key, value in self._items:
            if key == name:
                return value
        return default

    def __getitem__(self, name: str):
        value = self.get(name, _MISSING)
        if value is _MISSING:
            raise KeyError(name)
        return value

    def attributes(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self._items)

    def items(self):
        return self._items

    def as_dict(self) -> Dict[str, object]:
        return dict(self._items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, NestedRow):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._items)
        return f"NestedRow({inner})"


_MISSING = object()


class NestedRelation:
    """A set of :class:`NestedRow` objects over a fixed attribute list."""

    __slots__ = ("attributes", "_rows", "_hash")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Mapping[str, object]] = ()):
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attribute names in schema: {attrs}")
        materialized: List[NestedRow] = []
        for row in rows:
            if isinstance(row, NestedRow):
                data = row.as_dict()
            else:
                data = dict(row)
            unknown = set(data) - set(attrs)
            if unknown:
                extra = ", ".join(sorted(unknown))
                raise ValueError(f"row has attributes outside the schema: {extra}")
            materialized.append(NestedRow({name: data.get(name) for name in attrs}))
        frozen = frozenset(materialized)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_rows", frozen)
        object.__setattr__(self, "_hash", hash((attrs, frozen)))

    @classmethod
    def from_values(cls, values: Iterable[object]) -> "NestedRelation":
        """Build a sub-relation from a collection of dicts or of atoms.

        A collection of atoms becomes a single-column relation over the
        conventional attribute name ``value``.
        """
        values = list(values)
        if values and all(isinstance(value, Mapping) for value in values):
            attributes: List[str] = []
            for value in values:
                for name in value:
                    if name not in attributes:
                        attributes.append(name)
            return cls(attributes, values)
        return cls(("value",), ({"value": value} for value in values))

    def __setattr__(self, key, value):
        raise AttributeError("NestedRelation is immutable")

    # -- collection protocol --------------------------------------------------------
    @property
    def rows(self) -> FrozenSet[NestedRow]:
        return self._rows

    def __iter__(self) -> Iterator[NestedRow]:
        return iter(sorted(self._rows, key=repr))

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, NestedRelation):
            return NotImplemented
        return set(self.attributes) == set(other.attributes) and self._rows == other._rows

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"<NestedRelation ({', '.join(self.attributes)}) with {len(self)} rows>"


def nest(relation: NestedRelation, attributes: Sequence[str], into: str) -> NestedRelation:
    """Group ``relation`` on everything except ``attributes`` and collect them.

    ``nest(children, ["child"], into="children")`` turns the flat
    parent/child relation into the nested relation of the paper's Example 2.1
    ("a nested relation is an object").  Groups are keyed on the remaining
    attributes; each group's projected rows become the sub-relation stored
    under ``into``.
    """
    nested_attrs = tuple(attributes)
    missing = set(nested_attrs) - set(relation.attributes)
    if missing:
        unknown = ", ".join(sorted(missing))
        raise ValueError(f"cannot nest unknown attributes: {unknown}")
    if into in set(relation.attributes) - set(nested_attrs):
        raise ValueError(f"target attribute {into!r} collides with a grouping attribute")
    key_attrs = tuple(name for name in relation.attributes if name not in nested_attrs)
    groups: Dict[Tuple, List[Dict[str, object]]] = {}
    for row in relation.rows:
        key = tuple(row.get(name) for name in key_attrs)
        groups.setdefault(key, []).append({name: row.get(name) for name in nested_attrs})
    result_rows = []
    for key, grouped in groups.items():
        row: Dict[str, object] = dict(zip(key_attrs, key))
        row[into] = NestedRelation(nested_attrs, grouped)
        result_rows.append(row)
    return NestedRelation(key_attrs + (into,), result_rows)


def unnest(relation: NestedRelation, attribute: str) -> NestedRelation:
    """Flatten the relation-valued ``attribute`` back into the parent rows.

    Rows whose sub-relation is empty disappear, exactly as in the classical
    NF² algebra (unnest is not the exact inverse of nest in that case).
    """
    if attribute not in relation.attributes:
        raise ValueError(f"unknown attribute {attribute!r}")
    other_attrs = tuple(name for name in relation.attributes if name != attribute)
    inner_attrs: Tuple[str, ...] = ()
    for row in relation.rows:
        value = row.get(attribute)
        if isinstance(value, NestedRelation):
            inner_attrs = value.attributes
            break
    overlap = set(other_attrs) & set(inner_attrs)
    if overlap:
        shared = ", ".join(sorted(overlap))
        raise ValueError(f"unnesting would collide on attributes: {shared}")
    result_rows = []
    for row in relation.rows:
        value = row.get(attribute)
        if not isinstance(value, NestedRelation):
            raise ValueError(f"attribute {attribute!r} is not relation-valued in every row")
        for inner in value.rows:
            flat: Dict[str, object] = {name: row.get(name) for name in other_attrs}
            flat.update(inner.as_dict())
            result_rows.append(flat)
    return NestedRelation(other_attrs + inner_attrs, result_rows)
