"""Well-formed formulae (Definition 4.1 of the paper).

A well-formed formula has exactly the syntax of a complex object except that
*variables* may appear wherever an object may appear:

(i)   a variable is a well-formed formula;
(ii)  an atomic object is a well-formed formula (we also allow any ground
      complex object as a constant, which is a conservative generalisation:
      a ground tuple/set constant behaves exactly like the tuple/set formula
      spelling out its parts);
(iii) ``[a1: w1, ..., an: wn]`` is a well-formed formula when the ``wi`` are
      and the ``ai`` are distinct attribute names;
(iv)  ``{w1, ..., wn}`` is a well-formed formula when the ``wi`` are.

Following the paper we use the Prolog convention: identifiers starting with an
upper-case letter are variables, everything else is a constant.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from repro.core.builder import obj
from repro.core.errors import NotAnObjectError, ParameterError
from repro.core.objects import ComplexObject

__all__ = [
    "Formula",
    "Variable",
    "Constant",
    "Parameter",
    "TupleFormula",
    "SetFormula",
    "bind_parameters",
    "formula",
    "param",
    "var",
]


class Formula:
    """Abstract base class of well-formed formulae.

    Formulae are immutable; equality and hashing are structural, which lets
    rule sets deduplicate rules and lets tests compare parsed and hand-built
    formulae directly.
    """

    __slots__ = ()

    def variables(self) -> FrozenSet[str]:
        """The names of the variables occurring in the formula."""
        raise NotImplementedError

    def parameters(self) -> FrozenSet[str]:
        """The names of the ``$parameter`` slots occurring in the formula."""
        return frozenset()

    @property
    def is_ground(self) -> bool:
        """``True`` when the formula contains no variables."""
        return not self.variables()

    def to_text(self) -> str:
        """Render the formula in the paper's concrete syntax."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.to_text()}>"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Formula):
            return NotImplemented
        return self._signature() == other._signature()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._signature())

    def _signature(self):
        raise NotImplementedError


class Variable(Formula):
    """A variable (Definition 4.1(i)), written as an upper-case identifier."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("variable names must be non-empty strings")
        if not (name[0].isupper() or name[0] == "_"):
            raise ValueError(
                f"variable names must start with an upper-case letter or '_': {name!r}"
            )
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):
        raise AttributeError("Variable is immutable")

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def to_text(self) -> str:
        return self.name

    def _signature(self):
        return ("var", self.name)


class Constant(Formula):
    """A ground complex object used as a formula (Definition 4.1(ii))."""

    __slots__ = ("value",)

    def __init__(self, value: ComplexObject):
        if not isinstance(value, ComplexObject):
            raise NotAnObjectError(
                f"Constant expects a ComplexObject, got {type(value).__name__}"
            )
        object.__setattr__(self, "value", value)

    def __setattr__(self, key, value):
        raise AttributeError("Constant is immutable")

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def to_text(self) -> str:
        return self.value.to_text()

    def _signature(self):
        return ("const", self.value)


class Parameter(Formula):
    """A named constant slot ``$name``, bound to a ground object at execute time.

    Parameters extend Definition 4.1 the way classic prepared statements
    extend SQL: a parameter stands for a *constant* whose value is supplied
    when the query is executed, not when it is parsed or planned.  A formula
    containing parameters can therefore be compiled and cost-ordered once
    (see :mod:`repro.plan`) and re-executed with different bindings without
    re-planning — :func:`bind_parameters` substitutes the values structurally,
    which cannot change the formula's shape, leaf paths or variable set.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("parameter names must be non-empty strings")
        if not (name[0].isalpha() or name[0] == "_"):
            raise ValueError(
                f"parameter names must start with a letter or '_': {name!r}"
            )
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):
        raise AttributeError("Parameter is immutable")

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def parameters(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def to_text(self) -> str:
        return f"${self.name}"

    def _signature(self):
        return ("param", self.name)


class TupleFormula(Formula):
    """A tuple-shaped formula ``[a1: w1, ..., an: wn]`` (Definition 4.1(iii))."""

    __slots__ = ("_attrs",)

    def __init__(self, attributes: Mapping[str, Formula] = None, **kwargs: Formula):
        mapping: Dict[str, Formula] = {}
        if attributes:
            mapping.update(attributes)
        if kwargs:
            mapping.update(kwargs)
        for name, value in mapping.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"attribute names must be non-empty strings: {name!r}")
            if not isinstance(value, Formula):
                raise TypeError(
                    f"attribute {name!r} must map to a Formula, got {type(value).__name__}"
                )
        ordered = tuple(sorted(mapping.items(), key=lambda item: item[0]))
        object.__setattr__(self, "_attrs", ordered)

    def __setattr__(self, key, value):
        raise AttributeError("TupleFormula is immutable")

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names, in canonical order."""
        return tuple(name for name, _ in self._attrs)

    def get(self, name: str) -> Optional[Formula]:
        """The sub-formula at attribute ``name``, or ``None`` when absent."""
        for attr, value in self._attrs:
            if attr == name:
                return value
        return None

    def items(self) -> Tuple[Tuple[str, Formula], ...]:
        return self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for _, value in self._attrs:
            names |= value.variables()
        return names

    def parameters(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for _, value in self._attrs:
            names |= value.parameters()
        return names

    def to_text(self) -> str:
        inner = ", ".join(f"{name}: {value.to_text()}" for name, value in self._attrs)
        return f"[{inner}]"

    def _signature(self):
        return ("tuple", tuple((name, value._signature()) for name, value in self._attrs))


class SetFormula(Formula):
    """A set-shaped formula ``{w1, ..., wn}`` (Definition 4.1(iv))."""

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[Formula] = ()):
        collected = tuple(elements)
        for element in collected:
            if not isinstance(element, Formula):
                raise TypeError(
                    f"set formula elements must be Formulae, got {type(element).__name__}"
                )
        object.__setattr__(self, "elements", collected)

    def __setattr__(self, key, value):
        raise AttributeError("SetFormula is immutable")

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for element in self.elements:
            names |= element.variables()
        return names

    def parameters(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for element in self.elements:
            names |= element.parameters()
        return names

    def to_text(self) -> str:
        inner = ", ".join(element.to_text() for element in self.elements)
        return "{" + inner + "}"

    def _signature(self):
        # Element order is irrelevant to the formula's meaning, so the
        # signature sorts element signatures to make structurally equivalent
        # formulae compare equal.
        return ("set", tuple(sorted(element._signature() for element in self.elements)))


def var(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


def param(name: str) -> Parameter:
    """Shorthand constructor for a named ``$parameter`` slot."""
    return Parameter(name)


def bind_parameters(
    target: Formula, values: Mapping[str, ComplexObject]
) -> Formula:
    """Substitute ground objects for every ``$parameter`` slot of ``target``.

    The substitution is purely structural — a parameter becomes a
    :class:`Constant` carrying its value — so the result has exactly the
    shape, paths and variables of ``target``.  Sub-formulae without
    parameters are returned *as the same object*, which keeps the
    ``lru_cache``-keyed plan compilation effective for the unchanged parts.
    Raises :class:`~repro.core.errors.ParameterError` when a slot has no
    value; extra names in ``values`` are the caller's concern (see
    :meth:`repro.api.PreparedQuery.execute`, which rejects them).
    """
    if not target.parameters():
        return target
    if isinstance(target, Parameter):
        value = values.get(target.name)
        if value is None:
            raise ParameterError(f"no value bound for parameter ${target.name}")
        if not isinstance(value, ComplexObject):
            raise NotAnObjectError(
                f"parameter ${target.name} must be bound to a ComplexObject,"
                f" got {type(value).__name__}"
            )
        return Constant(value)
    if isinstance(target, TupleFormula):
        return TupleFormula(
            {name: bind_parameters(child, values) for name, child in target.items()}
        )
    if isinstance(target, SetFormula):
        return SetFormula(bind_parameters(child, values) for child in target.elements)
    raise TypeError(f"not a formula: {target!r}")


FormulaLike = Union[Formula, ComplexObject, None, bool, int, float, str, dict, list, tuple, set]
"""Python values accepted by :func:`formula`."""


def formula(value: FormulaLike) -> Formula:
    """Build a formula from a Python literal that may embed variables.

    Mirrors :func:`repro.core.builder.obj` but keeps :class:`Variable`
    instances (and nested formulae) intact, so a join formula can be written
    as ``formula({"r1": [{"a": var("X")}], "r2": [{"b": var("X")}]})``.
    """
    if isinstance(value, Formula):
        return value
    if isinstance(value, ComplexObject):
        return Constant(value)
    if isinstance(value, Mapping):
        return TupleFormula({name: formula(item) for name, item in value.items()})
    if isinstance(value, (list, tuple, set, frozenset)):
        return SetFormula(formula(item) for item in value)
    # Atomic Python values (and None → ⊥) become ground constants.
    return Constant(obj(value))
