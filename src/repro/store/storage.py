"""Storage engines: where named objects physically live.

Two engines implement the same interface (:class:`StorageEngine`):

* :class:`MemoryStorage` — a plain dictionary; the default for tests,
  examples and benchmarks;
* :class:`FileStorage` — a **write-ahead log**: every commit is appended as a
  single checksummed record (see :func:`repro.store.codec.frame_record`) and
  fsynced once, whether it carries one write or a whole transaction's batch.
  On open, the log is replayed to rebuild the current state; an unterminated
  final line is a *torn tail* left by a crash mid-append and is truncated
  away, while a complete record that fails to parse or fails its checksum is
  reported as corruption.  ``compact()`` rewrites the log with just the live
  versions.

The unit of atomicity is :meth:`StorageEngine.apply_batch`: a mapping from
names to new values (``None`` meaning delete) that is applied all-or-nothing.
``write``/``delete`` are single-change conveniences over it.  Everything
smarter (indexes, transactions, schema checks, locking, queries) lives above
the engines in :class:`repro.store.database.ObjectDatabase`.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.errors import StoreError
from repro.core.objects import ComplexObject
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY as _METRICS
from repro.store.codec import decode_json, encode_json, frame_record, parse_record

__all__ = ["StorageEngine", "MemoryStorage", "FileStorage"]


class StorageEngine:
    """Interface of a storage engine: a named map of complex objects."""

    def read(self, name: str) -> Optional[ComplexObject]:
        """Return the object stored under ``name``, or ``None`` when absent."""
        raise NotImplementedError

    def write(self, name: str, value: ComplexObject) -> None:
        """Store ``value`` under ``name``, replacing any previous version."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove ``name`` (no error when absent)."""
        raise NotImplementedError

    def apply_batch(self, changes: Mapping[str, Optional[ComplexObject]]) -> None:
        """Apply a group of changes atomically and (if durable) in one fsync.

        ``changes`` maps names to their new values; ``None`` deletes the
        name.  Either every change lands or none does — engines must validate
        and encode the whole batch before mutating any state.

        The default applies the batch change-by-change through ``write`` /
        ``delete`` so engines written against the original interface keep
        working — but that fallback is only atomic when the individual
        operations cannot fail part-way (it validates the whole batch up
        front to make that true for well-typed values).  Engines with a real
        commit point (like :class:`FileStorage`) must override it.
        """
        _check_batch(changes)
        for name, value in changes.items():
            if value is None:
                self.delete(name)
            else:
                self.write(name, value)

    def names(self) -> Tuple[str, ...]:
        """The names currently stored, sorted."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[str, ComplexObject]]:
        """Iterate over ``(name, object)`` pairs in name order."""
        for name in self.names():
            value = self.read(name)
            if value is not None:
                yield name, value

    def close(self) -> None:
        """Release any resources (files); the default does nothing."""


def _check_batch(changes: Mapping[str, Optional[ComplexObject]]) -> None:
    for name, value in changes.items():
        if not isinstance(name, str):
            raise StoreError(f"object names must be strings, got {type(name).__name__}")
        if value is not None and not isinstance(value, ComplexObject):
            raise StoreError(
                f"only complex objects can be stored, got {type(value).__name__}"
            )


class MemoryStorage(StorageEngine):
    """An in-memory storage engine backed by a dictionary."""

    def __init__(self):
        self._objects: Dict[str, ComplexObject] = {}

    def read(self, name: str) -> Optional[ComplexObject]:
        return self._objects.get(name)

    def write(self, name: str, value: ComplexObject) -> None:
        self.apply_batch({name: value})

    def delete(self, name: str) -> None:
        self.apply_batch({name: None})

    def apply_batch(self, changes: Mapping[str, Optional[ComplexObject]]) -> None:
        _check_batch(changes)
        # Validation above is the only thing that can raise; the loop below
        # cannot fail part-way, so the batch is all-or-nothing.
        for name, value in changes.items():
            if value is None:
                self._objects.pop(name, None)
            else:
                self._objects[name] = value

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._objects))


class FileStorage(StorageEngine):
    """A write-ahead-log storage engine over one append-only file.

    Each committed batch is one line: ``{"op": "commit", "writes": {name:
    encoded-object-or-null, ...}, "crc": ...}`` (``null`` deletes the name).
    The legacy per-change records ``{"op": "write"|"delete", ...}`` written
    by earlier versions are still replayed, so old logs open unchanged.

    Recovery discipline on open:

    * a final line with no terminating newline is a **torn tail** — the crash
      happened mid-append, the commit never completed, and the tail is
      truncated off so the next append starts at a record boundary;
    * a newline-terminated record that fails to parse, fails its checksum, or
      has an unknown shape is **corruption** and raises :class:`StoreError` —
      completed commits are never silently dropped.
    """

    def __init__(self, path: str):
        self.path = path
        self._objects: Dict[str, ComplexObject] = {}
        self.torn_bytes_dropped = 0
        self._replay()
        # Open for appending only after a successful replay so a corrupt log
        # is reported before any new data is appended to it.
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- log handling ------------------------------------------------------------
    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        replayed = 0
        with _trace.span("store.wal.recovery") as span:
            with open(self.path, "rb") as handle:
                raw = handle.read()
            if raw and not raw.endswith(b"\n"):
                boundary = raw.rfind(b"\n") + 1
                self.torn_bytes_dropped = len(raw) - boundary
                raw = raw[:boundary]
                with open(self.path, "r+b") as handle:
                    handle.truncate(boundary)
                    handle.flush()
                    os.fsync(handle.fileno())
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise StoreError(
                    f"corrupt storage log {self.path!r}: not valid UTF-8 ({error})"
                ) from error
            for line_number, line in enumerate(text.split("\n"), start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = parse_record(line)
                except StoreError as error:
                    raise StoreError(
                        f"corrupt storage log {self.path!r} at line {line_number}:"
                        f" {error}"
                    ) from error
                self._apply_record(record, line_number)
                replayed += 1
            if span.enabled:
                span.set(
                    path=self.path,
                    records=replayed,
                    torn_bytes=self.torn_bytes_dropped,
                )
        _METRICS.counter("store.wal.recoveries").inc()
        _METRICS.counter("store.wal.records_replayed").inc(replayed)
        _METRICS.counter("store.wal.torn_bytes_dropped").inc(self.torn_bytes_dropped)

    def _apply_record(self, record: dict, line_number: int) -> None:
        operation = record.get("op")
        if operation == "commit":
            writes = record.get("writes")
            if not isinstance(writes, dict):
                raise StoreError(
                    f"corrupt commit record (missing writes) at line {line_number}"
                )
            for name, data in writes.items():
                if data is None:
                    self._objects.pop(name, None)
                else:
                    self._objects[name] = decode_json(data)
            return
        # Legacy per-change records from the pre-WAL format.
        name = record.get("name")
        if not isinstance(name, str):
            raise StoreError(f"corrupt record (missing name) at line {line_number}")
        if operation == "write":
            self._objects[name] = decode_json(record.get("data"))
        elif operation == "delete":
            self._objects.pop(name, None)
        else:
            raise StoreError(
                f"corrupt record (unknown op {operation!r}) at line {line_number}"
            )

    def _append(self, line: str) -> None:
        start_ns = time.perf_counter_ns()
        with _trace.span("store.wal.append") as span:
            if span.enabled:
                span.set(bytes=len(line))
            self._handle.write(line)
            self._handle.flush()
            with _trace.span("store.wal.fsync"):
                os.fsync(self._handle.fileno())
        _METRICS.counter("store.wal.appends").inc()
        _METRICS.counter("store.wal.bytes").inc(len(line))
        _METRICS.counter("store.wal.fsyncs").inc()
        _METRICS.histogram("store.wal.append_ns").observe(
            time.perf_counter_ns() - start_ns
        )

    # -- StorageEngine interface ----------------------------------------------------
    def read(self, name: str) -> Optional[ComplexObject]:
        return self._objects.get(name)

    def write(self, name: str, value: ComplexObject) -> None:
        self.apply_batch({name: value})

    def apply_batch(self, changes: Mapping[str, Optional[ComplexObject]]) -> None:
        _check_batch(changes)
        if not changes:
            return
        # Encode and frame the whole commit before touching the log or the
        # in-memory state: an encoding failure leaves both untouched, and the
        # single append + fsync makes the batch one durability point.
        writes = {
            name: None if value is None else encode_json(value)
            for name, value in changes.items()
        }
        self._append(frame_record({"op": "commit", "writes": writes}))
        for name, value in changes.items():
            if value is None:
                self._objects.pop(name, None)
            else:
                self._objects[name] = value

    def delete(self, name: str) -> None:
        # Skip the log append when the name is absent; nothing to undo.
        if name in self._objects:
            self.apply_batch({name: None})

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._objects))

    def compact(self) -> None:
        """Rewrite the log keeping only the latest version of each object."""
        temporary = self.path + ".compact"
        with open(temporary, "w", encoding="utf-8") as handle:
            for name in sorted(self._objects):
                record = {
                    "op": "commit",
                    "writes": {name: encode_json(self._objects[name])},
                }
                handle.write(frame_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(temporary, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
