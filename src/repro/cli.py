"""Command-line front end for the complex-object calculus.

The CLI makes the library usable without writing Python: objects, formulae and
programs are given in the paper's concrete syntax, either inline or in files.
Every evaluating subcommand executes through the session facade of
:mod:`repro.api` — the same parse → plan → execute pipeline the Python API
uses — and every library failure is reported as one ``error:`` line with a
non-zero exit code (no traceback).

Subcommands
-----------
``parse``     parse an object and pretty-print it (checks well-formedness).
``query``     interpret a formula against a database object (Definition 4.2);
              ``--param name=value`` binds a ``$name`` parameter slot;
              ``--explain`` prints the optimized query plan (estimated vs
              actual cardinalities) instead of the answer.
``apply``     apply a single rule once to a database object (Definition 4.4).
``run``       evaluate a program (facts + rules) to its closure and optionally
              interpret a query against the result (Example 4.5 end to end).
              ``--engine seminaive`` selects the stratified, delta-driven,
              indexed engine of :mod:`repro.engine`; ``--stats`` prints its
              instrumentation record (including per-rule full-matching
              fallbacks); ``--explain`` prints the optimized program plan.
``lint``      whole-program static analysis (:mod:`repro.lint`): stable
              ``RLxxx`` diagnostics with severities, clause locations and fix
              hints, the stratification report, and plan-level findings.
              ``--db-path``/``--database`` profile a store or object so the
              cost model sees real cardinalities; ``--query`` anchors the
              dead-rule analysis; ``--format json`` emits the machine
              report; ``--suppress RLxxx`` (or ``N:RLxxx``) drops findings.
              Exits 1 on errors — and on warnings too under ``--strict``.
``check``     run the legacy static rule diagnostics over a program
              (superseded by ``lint``).
``store``     operate on a durable, WAL-backed object store: ``--db-path``
              opens (or creates) a :class:`repro.store.storage.FileStorage`
              log, and the actions ``put``/``get``/``delete``/``names``/
              ``query``/``compact`` run against it, each commit fsynced;
              ``query`` accepts ``--param`` bindings, and ``--explain`` shows
              the plan and the store access path (root-attribute pushdown /
              index short-circuit).  ``verify`` is different: it checks the
              WAL **offline and read-only** (no session, no recovery
              side-effects), prints an integrity report as JSON, and exits
              1 when the log is damaged.
``stats``     print the process-wide observability snapshot
              (:func:`repro.obs.snapshot`) as one JSON document — engine
              counters, plan-cache traffic, store commits/conflicts, index
              access paths, WAL appends/bytes/fsyncs, latency histograms;
              ``--db-path`` opens a store first so its recovery shows up.

``query`` and ``store query`` also take ``--explain-analyze`` (EXPLAIN
ANALYZE): the plan is executed and rendered with the **actual** rows and
wall time per plan node next to the optimizer's estimates.  ``run
--explain`` analyzes by default — its plan shows per-leaf times too.

Examples
--------
::

    python -m repro parse "[name: peter, children: {max, susan}]"
    python -m repro query --database db.obj "[r1: {[name: X]}]"
    python -m repro query --database db.obj '[r1: {[name: $who]}]' --param who=peter
    python -m repro run program.co --database family.obj --query "[doa: X]"
    python -m repro store --db-path db.wal put family "[family: {[name: abraham]}]"
    python -m repro store --db-path db.wal query '[family: {[name: $who]}]' --param who=abraham

(single-quote formulae containing ``$name`` parameters so the shell does not
expand them as environment variables)
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.api import ReproError, Session, connect
from repro.lint.legacy import analyze_rules
from repro.core.errors import ParameterError
from repro.core.objects import BOTTOM, ComplexObject
from repro.engine import ENGINES
from repro.parser import parse_formula, parse_object, parse_program, parse_rule
from repro.parser.printer import pretty

__all__ = ["main", "build_parser"]


def _read_source(value: str) -> str:
    """Treat ``value`` as a filename when prefixed with '@', else as inline text."""
    if value.startswith("@"):
        with open(value[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return value


def _load_database(value: Optional[str]):
    if value is None:
        return BOTTOM
    return parse_object(_read_source(value))


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, ComplexObject]:
    """Parse repeated ``--param name=value`` options (values are object text)."""
    bindings: Dict[str, ComplexObject] = {}
    for pair in pairs or ():
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise ParameterError(
                f"malformed --param {pair!r}: expected name=value"
            )
        bindings[name] = parse_object(_read_source(value))
    return bindings


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Calculus for Complex Objects (Bancilhon & Khoshafian, 1986)",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    parse_command = subcommands.add_parser("parse", help="parse and pretty-print an object")
    parse_command.add_argument("object", help="object text, or @file")
    parse_command.add_argument("--compact", action="store_true", help="one-line output")

    query_command = subcommands.add_parser("query", help="interpret a formula (E(O))")
    query_command.add_argument("formula", help="formula text, or @file")
    query_command.add_argument("--database", "-d", required=True, help="object text, or @file")
    query_command.add_argument(
        "--allow-bottom", action="store_true", help="use the literal Definition 4.2 semantics"
    )
    query_command.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized query plan (estimated vs actual rows) instead"
        " of the answer",
    )
    query_command.add_argument(
        "--explain-analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the plan and print actual rows and"
        " wall time per plan node next to the estimates",
    )
    query_command.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="bind a $NAME parameter slot to an object (repeatable)",
    )

    apply_command = subcommands.add_parser("apply", help="apply one rule to an object (r(O))")
    apply_command.add_argument("rule", help="rule text, or @file")
    apply_command.add_argument("--database", "-d", required=True, help="object text, or @file")

    run_command = subcommands.add_parser("run", help="evaluate a program to its closure")
    run_command.add_argument("program", help="program text, or @file")
    run_command.add_argument("--database", "-d", help="object text, or @file (default ⊥)")
    run_command.add_argument("--query", "-q", help="formula to interpret against the closure")
    run_command.add_argument(
        "--max-iterations", type=int, default=200, help="divergence guard (iterations)"
    )
    run_command.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="naive",
        help="evaluation strategy (default: naive; seminaive is the"
        " stratified, delta-driven, indexed engine)",
    )
    run_command.add_argument(
        "--stats",
        action="store_true",
        help="print the engine's instrumentation record as a comment line",
    )
    run_command.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized evaluation plan (estimated vs actual rows)"
        " instead of the closure",
    )

    lint_command = subcommands.add_parser(
        "lint", help="whole-program static analysis with stable RLxxx diagnostics"
    )
    lint_command.add_argument("program", help="program text, or @file")
    lint_command.add_argument(
        "--query", "-q", help="formula whose reads anchor the dead-rule analysis"
    )
    lint_command.add_argument(
        "--database",
        "-d",
        help="object text, or @file: profiled so plan-level findings see real"
        " cardinalities",
    )
    lint_command.add_argument(
        "--db-path",
        help="WAL-backed store to profile instead of an inline --database",
    )
    lint_command.add_argument(
        "--strict", action="store_true", help="exit 1 on warnings, not just errors"
    )
    lint_command.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    lint_command.add_argument(
        "--suppress",
        action="append",
        metavar="RLxxx|N:RLxxx",
        help="drop a diagnostic code everywhere, or for clause N only"
        " (repeatable)",
    )

    check_command = subcommands.add_parser(
        "check", help="legacy static diagnostics over a program (see: lint)"
    )
    check_command.add_argument("program", help="program text, or @file")

    store_command = subcommands.add_parser(
        "store", help="operate on a durable (write-ahead-log) object store"
    )
    store_command.add_argument(
        "--db-path",
        required=True,
        help="path of the WAL file backing the store (created when absent)",
    )
    store_command.add_argument(
        "action",
        choices=["put", "get", "delete", "names", "query", "compact", "verify"],
        help="what to do against the store",
    )
    store_command.add_argument(
        "name", nargs="?", help="object name (put/get/delete), or formula text/@file (query)"
    )
    store_command.add_argument("value", nargs="?", help="object text, or @file (put)")
    store_command.add_argument(
        "--against", help="interpret the query against one stored name (query)"
    )
    store_command.add_argument("--compact", action="store_true", help="one-line output")
    store_command.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized query plan and the chosen store access path"
        " instead of the answer (query)",
    )
    store_command.add_argument(
        "--explain-analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the plan and print actual rows and"
        " wall time per plan node next to the estimates (query)",
    )
    store_command.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="bind a $NAME parameter slot to an object (query, repeatable)",
    )

    stats_command = subcommands.add_parser(
        "stats", help="print the observability snapshot as one JSON document"
    )
    stats_command.add_argument(
        "--db-path",
        help="open this WAL-backed store first, so its recovery (records"
        " replayed, torn bytes dropped) is reflected in the snapshot",
    )

    return parser


def _run_lint(arguments, stream) -> int:
    """The ``lint`` subcommand: analyze, render, and pick the exit code."""
    import json

    from repro.lint import lint_source
    from repro.plan.statistics import DatabaseStatistics

    statistics = None
    database = None
    if arguments.db_path:
        session = connect(arguments.db_path)
        try:
            database = session.database.as_object()
        finally:
            session.shutdown()
    elif arguments.database:
        database = _load_database(arguments.database)
    if database is not None:
        # The profiled object serves both consumers: real cardinalities for
        # the plan-level findings (RL3xx) and a closed world for the shape
        # analysis (RL2xx).
        statistics = DatabaseStatistics.collect(database)
    query = (
        parse_formula(_read_source(arguments.query)) if arguments.query else None
    )
    report = lint_source(
        _read_source(arguments.program),
        query=query,
        statistics=statistics,
        database=database,
    )
    if arguments.suppress:
        report = report.suppress(arguments.suppress)
    if arguments.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True), file=stream)
    else:
        print(report.render(), file=stream)
    return 0 if report.ok(strict=arguments.strict) else 1


def _run_store(arguments, stream) -> int:
    from repro.core.errors import StoreError

    if arguments.action == "verify":
        # Offline, read-only: never opens a session (a mutating open would
        # truncate torn tails and quarantine corruption — verify reports
        # the damage instead of repairing it).  Exit 1 when not clean.
        import json

        from repro.store.verify import verify_wal

        report = verify_wal(arguments.db_path)
        print(json.dumps(report, indent=2, sort_keys=True), file=stream)
        return 0 if report["clean"] else 1

    session = connect(arguments.db_path)
    try:
        if arguments.action == "put":
            if arguments.name is None or arguments.value is None:
                raise StoreError("store put needs a name and an object")
            session.put(arguments.name, parse_object(_read_source(arguments.value)))
            print(f"stored {arguments.name!r}", file=stream)
        elif arguments.action == "get":
            if arguments.name is None:
                raise StoreError("store get needs a name")
            value = session.get(arguments.name)
            if value is None:
                raise StoreError(f"no object stored under {arguments.name!r}")
            print(value.to_text() if arguments.compact else pretty(value), file=stream)
        elif arguments.action == "delete":
            if arguments.name is None:
                raise StoreError("store delete needs a name")
            session.remove(arguments.name)
            print(f"deleted {arguments.name!r}", file=stream)
        elif arguments.action == "names":
            for name in session.names():
                print(name, file=stream)
        elif arguments.action == "query":
            if arguments.name is None:
                raise StoreError("store query needs a formula")
            formula = parse_formula(_read_source(arguments.name))
            params = _parse_params(arguments.param)
            if arguments.explain or arguments.explain_analyze:
                print(
                    session.explain(
                        formula,
                        params,
                        against=arguments.against,
                        analyze=arguments.explain_analyze,
                    ),
                    file=stream,
                )
            else:
                result = session.query(formula, params, against=arguments.against)
                print(pretty(result), file=stream)
        elif arguments.action == "compact":
            session.compact()
            print(f"compacted {arguments.db_path}", file=stream)
    finally:
        session.shutdown()
    return 0


def main(argv: Optional[Sequence[str]] = None, output=None) -> int:
    """Entry point; returns the process exit code (0 success, 1 user error)."""
    stream = output if output is not None else sys.stdout
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "parse":
            value = parse_object(_read_source(arguments.object))
            rendered = value.to_text() if arguments.compact else pretty(value)
            print(rendered, file=stream)
        elif arguments.command == "query":
            session = Session.over_object(_load_database(arguments.database))
            formula = parse_formula(_read_source(arguments.formula))
            params = _parse_params(arguments.param)
            if arguments.explain or arguments.explain_analyze:
                print(
                    session.explain(
                        formula,
                        params,
                        allow_bottom=arguments.allow_bottom,
                        analyze=arguments.explain_analyze,
                    ),
                    file=stream,
                )
            else:
                result = session.query(
                    formula, params, allow_bottom=arguments.allow_bottom
                )
                print(pretty(result), file=stream)
        elif arguments.command == "apply":
            database = _load_database(arguments.database)
            rule = parse_rule(_read_source(arguments.rule))
            print(pretty(rule.apply(database)), file=stream)
        elif arguments.command == "run":
            session = Session.over_object(_load_database(arguments.database))
            session.register(parse_program(_read_source(arguments.program)))
            guards = {
                "engine": arguments.engine,
                "max_iterations": arguments.max_iterations,
            }
            if arguments.explain:
                if arguments.stats:
                    # --stats composes with --explain: the instrumentation
                    # line is printed before the plan rather than dropped.
                    stats_result = session.close(**guards)
                    print(
                        f"% engine {arguments.engine}:"
                        f" {stats_result.stats.summary()}",
                        file=stream,
                    )
                query = (
                    parse_formula(_read_source(arguments.query))
                    if arguments.query
                    else None
                )
                print(session.program().explain(query, **guards), file=stream)
                return 0
            result = session.close(**guards)
            print(f"% closure reached after {result.iterations} iterations", file=stream)
            if arguments.stats:
                stats = getattr(result, "stats", None)
                if stats is None:
                    print(
                        f"% engine {arguments.engine}: no instrumentation"
                        " (the naive engine reports iterations only)",
                        file=stream,
                    )
                else:
                    print(f"% engine {arguments.engine}: {stats.summary()}", file=stream)
            if arguments.query:
                # The closure is cached on the session, so this re-uses the
                # evaluation above rather than running the program again.
                answer = session.query(
                    parse_formula(_read_source(arguments.query)),
                    on_closure=True,
                    **guards,
                )
                print(pretty(answer), file=stream)
            else:
                print(pretty(result.value), file=stream)
        elif arguments.command == "lint":
            return _run_lint(arguments, stream)
        elif arguments.command == "store":
            return _run_store(arguments, stream)
        elif arguments.command == "stats":
            import json

            from repro import obs

            if arguments.db_path:
                # Opening the store replays its WAL, so the snapshot below
                # reflects the recovery (records replayed, torn tail bytes).
                connect(arguments.db_path).shutdown()
            print(
                json.dumps(obs.snapshot(), indent=2, sort_keys=True), file=stream
            )
        elif arguments.command == "check":
            rules = parse_program(_read_source(arguments.program))
            reports = analyze_rules(rules)
            for report in reports:
                status = "fact" if report.is_fact else (
                    "MAY DIVERGE" if report.may_diverge else "ok"
                )
                print(f"{status:12s} {report.rule.to_text()}", file=stream)
                for warning in report.warnings:
                    print(f"             warning: {warning}", file=stream)
    except ReproError as error:
        # One catch covers the whole library surface (parse, plan, parameter,
        # schema, store, divergence): a single line, no traceback, exit 1.
        print(f"error: {error}", file=stream)
        return 1
    except OSError as error:
        print(f"error: {error}", file=stream)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
