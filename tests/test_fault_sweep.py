"""Unit tests for the crash-consistency sweep harness (repro.fault.sweep)."""

import pytest

from repro.core.builder import obj
from repro.fault.sweep import (
    BOUNDARIES,
    SweepReport,
    default_workload,
    run_crash_sweep,
    run_sweep,
    run_truncation_sweep,
)
from repro.fault.sweep import main as sweep_main


class TestWorkload:
    def test_workload_is_deterministic(self):
        assert default_workload(8) == default_workload(8)

    def test_workload_mixes_writes_and_deletes(self):
        batches = default_workload(10)
        assert any(None in batch.values() for batch in batches)
        assert any(len(batch) > 1 for batch in batches)


class TestCrashSweep:
    def test_small_workload_passes(self, tmp_path):
        workload = default_workload(4)
        report = run_crash_sweep(workload, directory=str(tmp_path))
        assert report.passed, report.failures
        assert report.cases == 4 * len(BOUNDARIES)

    def test_single_commit_boundaries(self, tmp_path):
        report = run_crash_sweep(
            [{"only": obj(1)}], directory=str(tmp_path)
        )
        assert report.passed, report.failures
        assert report.cases == len(BOUNDARIES)


class TestTruncationSweep:
    def test_every_offset_recovers_a_prefix(self, tmp_path):
        workload = default_workload(3)
        report = run_truncation_sweep(workload, directory=str(tmp_path))
        assert report.passed, report.failures
        # One case per byte offset (0..size inclusive).
        assert report.cases > 100

    def test_strided_sweep_still_covers_record_boundaries(self, tmp_path):
        workload = default_workload(3)
        full = run_truncation_sweep(workload, directory=str(tmp_path / "full"))
        strided = run_truncation_sweep(
            workload, directory=str(tmp_path / "strided"), stride=97
        )
        assert strided.passed, strided.failures
        assert strided.cases < full.cases
        # The boundaries (where the expected state changes) are always kept:
        # 3 commits + offset 0, plus the strided samples.
        assert strided.cases >= 4

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            run_truncation_sweep(stride=0)


class TestReportAndCli:
    def test_report_merge_and_summary(self):
        report = SweepReport(cases=3).merge(SweepReport(cases=2, failures=["x"]))
        assert report.cases == 5
        assert not report.passed
        assert report.summary() == "FAIL: 4/5 cases"
        assert SweepReport(cases=2).summary() == "PASS: 2/2 cases"

    def test_run_sweep_combines_both_harnesses(self, tmp_path):
        report = run_sweep(batches=2, stride=61, directory=str(tmp_path))
        assert report.passed, report.failures
        assert report.cases > 2 * len(BOUNDARIES)

    def test_cli_smoke_exits_zero(self, capsys):
        assert sweep_main(["--smoke", "--batches", "2", "--stride", "89"]) == 0
        assert "PASS" in capsys.readouterr().out
