"""Unit tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    """Run the CLI capturing output; return (exit_code, output_text)."""
    buffer = io.StringIO()
    code = main(list(argv), output=buffer)
    return code, buffer.getvalue()


class TestParseCommand:
    def test_parse_compact(self):
        code, output = run_cli("parse", "[b: 2, a: 1]", "--compact")
        assert code == 0
        assert output.strip() == "[a: 1, b: 2]"

    def test_parse_pretty_round_trips(self):
        source = "{[name: peter, age: 25], [name: john, age: 7], [name: mary, age: 13]}"
        code, output = run_cli("parse", source)
        assert code == 0
        from repro import parse_object

        assert parse_object(output) == parse_object(source)

    def test_parse_error_reports_and_fails(self):
        code, output = run_cli("parse", "[a: ]")
        assert code == 1
        assert "error:" in output

    def test_parse_from_file(self, tmp_path):
        path = tmp_path / "object.co"
        path.write_text("[name: peter]", encoding="utf-8")
        code, output = run_cli("parse", f"@{path}", "--compact")
        assert code == 0
        assert output.strip() == "[name: peter]"

    def test_missing_file_reports_error(self):
        code, output = run_cli("parse", "@/does/not/exist.co")
        assert code == 1
        assert "error:" in output


class TestQueryAndApply:
    DATABASE = "[r1: {[a: 1, b: x], [a: 2, b: y]}, r2: {[c: x, d: 10]}]"

    def test_query(self):
        code, output = run_cli("query", "[r1: {[a: X, b: x]}]", "--database", self.DATABASE)
        assert code == 0
        assert "[a: 1, b: x]" in output

    def test_query_literal_semantics_flag(self):
        code, output = run_cli(
            "query",
            "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: D]}]",
            "--database",
            self.DATABASE,
            "--allow-bottom",
        )
        assert code == 0
        assert "[a: 2]" in output  # the literal reading keeps the stripped tuple

    def test_apply_rule(self):
        code, output = run_cli(
            "apply",
            "[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
            "--database",
            self.DATABASE,
        )
        assert code == 0
        assert "[a: 1, d: 10]" in output
        assert "[a: 2" not in output


class TestRunAndCheck:
    PROGRAM = (
        "[doa: {abraham}].\n"
        "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].\n"
    )
    FAMILY = "[family: {[name: abraham, children: {[name: isaac]}], [name: isaac, children: {[name: jacob]}]}]"

    def test_run_program_with_query(self, tmp_path):
        program_file = tmp_path / "descendants.co"
        program_file.write_text(self.PROGRAM, encoding="utf-8")
        code, output = run_cli(
            "run", f"@{program_file}", "--database", self.FAMILY, "--query", "[doa: X]"
        )
        assert code == 0
        assert "closure reached" in output
        for name in ("abraham", "isaac", "jacob"):
            assert name in output

    def test_run_without_query_prints_closure(self):
        code, output = run_cli("run", self.PROGRAM, "--database", self.FAMILY)
        assert code == 0
        assert "family" in output and "doa" in output

    def test_run_divergent_program_fails_gracefully(self):
        code, output = run_cli(
            "run",
            "[list: {1}]. [list: {[head: 1, tail: X]}] :- [list: {X}].",
            "--max-iterations",
            "20",
        )
        assert code == 1
        assert "error:" in output

    def test_check_flags_divergent_rules(self):
        code, output = run_cli(
            "check", "[list: {1}]. [list: {[head: 1, tail: X]}] :- [list: {X}]."
        )
        assert code == 0
        assert "MAY DIVERGE" in output
        assert "fact" in output

    def test_check_clean_program(self):
        code, output = run_cli("check", self.PROGRAM)
        assert code == 0
        assert "MAY DIVERGE" not in output

class TestEngineSelection:
    PROGRAM = TestRunAndCheck.PROGRAM
    FAMILY = TestRunAndCheck.FAMILY

    def test_run_seminaive_matches_naive_output(self):
        code_naive, naive = run_cli("run", self.PROGRAM, "--database", self.FAMILY)
        code_semi, semi = run_cli(
            "run", self.PROGRAM, "--database", self.FAMILY, "--engine", "seminaive"
        )
        assert code_naive == code_semi == 0
        # Same closure; only the iteration-count comment line may differ.
        strip = lambda text: [l for l in text.splitlines() if not l.startswith("%")]
        assert strip(naive) == strip(semi)

    def test_stats_line_for_seminaive(self):
        code, output = run_cli(
            "run",
            self.PROGRAM,
            "--database",
            self.FAMILY,
            "--engine",
            "seminaive",
            "--stats",
        )
        assert code == 0
        assert "% engine seminaive:" in output
        assert "strata" in output

    def test_stats_line_for_naive_engine(self):
        code, output = run_cli(
            "run", self.PROGRAM, "--database", self.FAMILY, "--stats"
        )
        assert code == 0
        assert "% engine naive:" in output

    def test_divergent_program_fails_gracefully_with_seminaive(self):
        code, output = run_cli(
            "run",
            "[list: {1}]. [list: {[head: 1, tail: X]}] :- [list: {X}].",
            "--engine",
            "seminaive",
            "--max-iterations",
            "20",
        )
        assert code == 1
        assert "error:" in output

    def test_unknown_engine_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("run", self.PROGRAM, "--engine", "quantum")


class TestParameters:
    DATABASE = "[r1: {[name: peter, age: 25], [name: john, age: 7]}]"

    def test_query_with_param(self):
        code, output = run_cli(
            "query", "[r1: {[name: $who, age: A]}]", "--database", self.DATABASE,
            "--param", "who=peter",
        )
        assert code == 0
        assert "peter" in output and "john" not in output

    def test_query_with_repeated_params(self):
        code, output = run_cli(
            "query", "[r1: {[name: $who, age: $age]}]", "--database", self.DATABASE,
            "--param", "who=john", "--param", "age=7",
        )
        assert code == 0
        assert "john" in output

    def test_missing_param_is_a_one_line_error(self):
        code, output = run_cli(
            "query", "[r1: {[name: $who]}]", "--database", self.DATABASE
        )
        assert code == 1
        assert output.startswith("error:")
        assert "who" in output

    def test_malformed_param_option(self):
        code, output = run_cli(
            "query", "[r1: {[name: $who]}]", "--database", self.DATABASE,
            "--param", "who",
        )
        assert code == 1
        assert "name=value" in output

    def test_store_query_with_param(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        run_cli(
            "store", "--db-path", db_path, "put", "people",
            "{[name: peter, age: 25], [name: john, age: 7]}",
        )
        code, output = run_cli(
            "store", "--db-path", db_path, "query", "{[name: $who, age: A]}",
            "--against", "people", "--param", "who=peter",
        )
        assert code == 0
        assert "peter" in output and "john" not in output


class TestErrorSurface:
    """Every library failure: exit 1, one ``error:`` line, no traceback."""

    def assert_one_line_error(self, code, output):
        assert code == 1
        lines = [line for line in output.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "Traceback" not in output

    def test_parse_malformed_object(self):
        self.assert_one_line_error(*run_cli("parse", "[a: {1, ]"))

    def test_parse_variable_in_ground_object(self):
        self.assert_one_line_error(*run_cli("parse", "[a: X]"))

    def test_query_malformed_formula(self):
        self.assert_one_line_error(
            *run_cli("query", "[a: ", "--database", "[a: 1]")
        )

    def test_run_malformed_program(self):
        self.assert_one_line_error(*run_cli("run", "[doa: {abraham}] :-"))

    def test_run_divergent_program(self):
        code, output = run_cli(
            "run",
            "[list: {1}]. [list: {[head: 1, tail: X]}] :- [list: {X}].",
            "--max-iterations", "10",
        )
        self.assert_one_line_error(code, output)

    def test_store_malformed_object(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        self.assert_one_line_error(
            *run_cli("store", "--db-path", db_path, "put", "x", "[a: }")
        )

    def test_store_query_malformed_formula(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        self.assert_one_line_error(
            *run_cli("store", "--db-path", db_path, "query", "{[name: ]}")
        )

    def test_store_missing_name_error(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        self.assert_one_line_error(
            *run_cli("store", "--db-path", db_path, "get", "ghost")
        )


class TestStoreCommand:
    def test_put_get_round_trip(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        code, output = run_cli(
            "store", "--db-path", db_path, "put", "family",
            "[family: {[name: abraham]}]",
        )
        assert code == 0
        assert "stored 'family'" in output
        code, output = run_cli(
            "store", "--db-path", db_path, "get", "family", "--compact"
        )
        assert code == 0
        assert output.strip() == "[family: {[name: abraham]}]"

    def test_durability_across_invocations(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        run_cli("store", "--db-path", db_path, "put", "a", "1")
        run_cli("store", "--db-path", db_path, "put", "b", "2")
        run_cli("store", "--db-path", db_path, "delete", "a")
        code, output = run_cli("store", "--db-path", db_path, "names")
        assert code == 0
        assert output.split() == ["b"]

    def test_query_against_stored_object(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        run_cli(
            "store", "--db-path", db_path, "put", "people",
            "{[name: peter, age: 25], [name: john, age: 7]}",
        )
        code, output = run_cli(
            "store", "--db-path", db_path, "query", "{[name: X, age: 25]}",
            "--against", "people",
        )
        assert code == 0
        assert "peter" in output
        assert "john" not in output

    def test_compact_rewrites_the_log(self, tmp_path):
        import os

        db_path = str(tmp_path / "db.wal")
        for version in range(10):
            run_cli("store", "--db-path", db_path, "put", "x", str(version))
        size_before = os.path.getsize(db_path)
        code, output = run_cli("store", "--db-path", db_path, "compact")
        assert code == 0
        assert os.path.getsize(db_path) < size_before
        code, output = run_cli("store", "--db-path", db_path, "get", "x", "--compact")
        assert output.strip() == "9"

    def test_get_missing_name_is_an_error(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        code, output = run_cli("store", "--db-path", db_path, "get", "ghost")
        assert code == 1
        assert "error:" in output

    def test_put_without_value_is_an_error(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        code, output = run_cli("store", "--db-path", db_path, "put", "x")
        assert code == 1
        assert "error:" in output


class TestStoreVerify:
    """``store verify``: offline WAL integrity checking."""

    @staticmethod
    def _report(output):
        import json

        return json.loads(output)

    def test_clean_log_verifies_with_exit_zero(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        run_cli("store", "--db-path", db_path, "put", "x", "[name: peter]")
        code, output = run_cli("store", "--db-path", db_path, "verify")
        assert code == 0
        report = self._report(output)
        assert report["clean"] is True
        assert report["commits"] == 1
        assert report["objects"] == 1

    def test_absent_log_is_a_clean_empty_store(self, tmp_path):
        code, output = run_cli(
            "store", "--db-path", str(tmp_path / "missing.wal"), "verify"
        )
        assert code == 0
        report = self._report(output)
        assert report["exists"] is False
        assert report["clean"] is True

    def test_torn_tail_exits_one_without_repairing(self, tmp_path):
        import os

        db_path = str(tmp_path / "db.wal")
        run_cli("store", "--db-path", db_path, "put", "x", "[name: peter]")
        with open(db_path, "a", encoding="utf-8") as handle:
            handle.write('{"op":"commit","writes"')
        size = os.path.getsize(db_path)
        code, output = run_cli("store", "--db-path", db_path, "verify")
        assert code == 1
        report = self._report(output)
        assert report["clean"] is False
        assert report["torn_tail_bytes"] > 0
        assert report["commits"] == 1
        # Read-only: verify must never truncate what recovery would.
        assert os.path.getsize(db_path) == size

    def test_corrupt_record_is_located_and_reported(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        run_cli("store", "--db-path", db_path, "put", "x", "[name: peter]")
        run_cli("store", "--db-path", db_path, "put", "y", "[name: john]")
        with open(db_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = lines[1].replace('"commit"', '"COMMIT"')
        with open(db_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        code, output = run_cli("store", "--db-path", db_path, "verify")
        assert code == 1
        report = self._report(output)
        assert report["records"] == 1
        assert report["corrupt_records"][0]["line"] == 2
        assert "checksum" in report["corrupt_records"][0]["error"]

    def test_quarantine_sidecar_is_surfaced(self, tmp_path):
        db_path = str(tmp_path / "db.wal")
        run_cli("store", "--db-path", db_path, "put", "x", "[name: peter]")
        run_cli("store", "--db-path", db_path, "put", "y", "[name: john]")
        with open(db_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = lines[1].replace('"commit"', '"COMMIT"')
        with open(db_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        # Any mutating open quarantines the damage; verify then reports the
        # sidecar as damage-to-investigate even though the log is intact.
        run_cli("store", "--db-path", db_path, "names")
        code, output = run_cli("store", "--db-path", db_path, "verify")
        assert code == 1
        report = self._report(output)
        assert report["corrupt_records"] == []
        assert report["quarantine"]["present"] is True
        assert report["quarantine"]["bytes"] > 0


class TestLintCommand:
    DIVERGING = "[list: {[head: 1, tail: X]}] :- [list: {X}]."
    CLEAN = (
        "[anc: {[of: X, is: Y]}] :- [parent: {[of: X, is: Y]}].\n"
        "[anc: {[of: X, is: Z]}] :-"
        " [anc: {[of: X, is: Y]}, parent: {[of: Y, is: Z]}].\n"
    )

    def test_clean_program_exits_zero(self):
        code, output = run_cli("lint", self.CLEAN)
        assert code == 0
        assert "0 error(s), 0 warning(s)" in output
        assert "strata" in output

    def test_warnings_exit_zero_by_default(self):
        code, output = run_cli("lint", self.DIVERGING)
        assert code == 0
        assert "RL003" in output

    def test_strict_turns_warnings_into_failure(self):
        code, output = run_cli("lint", self.DIVERGING, "--strict")
        assert code == 1
        assert "RL003" in output

    def test_errors_always_fail(self):
        code, output = run_cli("lint", "[a: {top}] :- [b: {X, X}].")
        assert code == 1
        assert "RL103" in output

    def test_json_format(self):
        import json

        code, output = run_cli("lint", self.DIVERGING, "--format", "json")
        assert code == 0
        document = json.loads(output)
        assert document["schema"] == "repro-lint/v1"
        assert document["summary"]["by_code"] == {"RL003": 1}

    def test_suppress_by_code(self):
        code, output = run_cli(
            "lint", self.DIVERGING, "--strict", "--suppress", "RL003"
        )
        assert code == 0
        assert "RL003" not in output

    def test_suppress_by_clause(self):
        source = self.DIVERGING + "\n" + self.DIVERGING.replace("list", "cons")
        code, output = run_cli(
            "lint", source, "--strict", "--suppress", "1:RL003"
        )
        assert code == 1  # clause 2 still warns
        assert "cons" in output

    def test_program_from_file(self, tmp_path):
        path = tmp_path / "program.co"
        path.write_text(self.CLEAN, encoding="utf-8")
        code, output = run_cli("lint", f"@{path}")
        assert code == 0

    def test_query_enables_dead_rule_analysis(self):
        source = self.CLEAN + "[island: {X}] :- [nowhere: {X}].\n"
        code, output = run_cli(
            "lint", source, "--query", "[anc: {[of: a, is: W]}]", "--strict"
        )
        assert code == 1
        assert "RL005" in output

    def test_db_path_statistics_enable_rl303(self, tmp_path):
        db = tmp_path / "store.wal"
        code, _ = run_cli("store", "put", "xs", "{1, 2, 3}", "--db-path", str(db))
        assert code == 0
        source = "[out: {X}] :- [nowhere: {X}]."
        code, output = run_cli("lint", source, "--db-path", str(db), "--strict")
        assert code == 1
        assert "RL303" in output
        code, output = run_cli("lint", "[out: {X}] :- [xs: {X}].", "--db-path", str(db))
        assert code == 0
