"""Property-based guarantees for the hash-consed object universe.

Interning is a pure representation change: every observable of the paper's
semantics — Definition 2.2 equality, the Theorem 3.1–3.3 sub-object order,
the lattice meet/join of Theorems 3.4–3.6, and closure evaluation — must be
identical whether an object is the canonical interned instance or a raw
structural twin built through the ``.raw`` constructors (the seed's code
path).  Hypothesis drives both representations through the same operations
and demands agreement, plus the uniqueness invariant itself: structurally
equal normalized constructions yield the *same instance*.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from tests.conftest import atoms, complex_objects  # noqa: E402

from repro import Program  # noqa: E402
from repro.core import (  # noqa: E402
    Atom,
    ComplexObject,
    SetObject,
    TupleObject,
    clear_object_caches,
    intersection,
    is_interned,
    is_subobject,
    maximal_elements,
    union,
)
from repro.calculus.fixpoint import close  # noqa: E402
from repro.workloads import make_genealogy  # noqa: E402


def raw_twin(value: ComplexObject) -> ComplexObject:
    """Rebuild ``value`` through the raw constructors: equal, never interned.

    Atoms and the ⊥/⊤ singletons are interned by definition; the composite
    layers above them are where the raw/interned distinction lives.
    """
    if isinstance(value, TupleObject):
        return TupleObject.raw({name: raw_twin(child) for name, child in value.items()})
    if isinstance(value, SetObject):
        return SetObject.raw([raw_twin(element) for element in value])
    return value


class TestUniquenessInvariant:
    @given(complex_objects())
    def test_everything_from_default_constructors_is_interned(self, value):
        assert is_interned(value)

    @given(complex_objects())
    def test_structurally_equal_means_same_instance(self, value):
        # Rebuilding the same structure from scratch converges on the same
        # canonical instance...
        if isinstance(value, TupleObject):
            rebuilt = TupleObject(dict(value.items()))
        elif isinstance(value, SetObject):
            rebuilt = SetObject(list(value))
        elif isinstance(value, Atom):
            rebuilt = Atom(value.value)
        else:
            rebuilt = value
        assert rebuilt is value

    @given(complex_objects(), complex_objects())
    def test_equality_is_identity_on_interned(self, left, right):
        assert (left == right) == (left is right)

    @given(complex_objects(), complex_objects())
    def test_antisymmetry_collapses_to_identity(self, left, right):
        if is_subobject(left, right) and is_subobject(right, left):
            assert left is right


class TestDefinition22Preservation:
    @given(complex_objects())
    def test_raw_twin_is_equal_but_not_interned(self, value):
        twin = raw_twin(value)
        assert twin == value and value == twin
        assert hash(twin) == hash(value)
        if isinstance(value, (TupleObject, SetObject)):
            assert not is_interned(twin)

    @given(complex_objects(), complex_objects())
    def test_cross_representation_equality_agrees(self, left, right):
        assert (raw_twin(left) == right) == (left == right)
        assert (left == raw_twin(right)) == (left == right)


class TestOrderPreservation:
    @given(complex_objects(), complex_objects())
    def test_subobject_agrees_with_raw_path(self, left, right):
        expected = is_subobject(raw_twin(left), raw_twin(right))
        assert is_subobject(left, right) == expected

    @given(complex_objects(), complex_objects())
    def test_subobject_survives_cache_clears(self, left, right):
        warm = is_subobject(left, right)
        clear_object_caches()
        assert is_subobject(left, right) == warm

    @given(st.lists(complex_objects(max_depth=2), max_size=6))
    def test_maximal_elements_match_quadratic_reference(self, items):
        def reference(objects):
            unique = list(dict.fromkeys(objects))
            kept = []
            for index, candidate in enumerate(unique):
                dominated = False
                for other_index, other in enumerate(unique):
                    if index == other_index:
                        continue
                    if is_subobject(candidate, other) and not (
                        is_subobject(other, candidate) and index < other_index
                    ):
                        dominated = True
                        break
                if not dominated:
                    kept.append(candidate)
            return kept

        assert maximal_elements(items) == reference(items)


class TestLatticePreservation:
    @given(complex_objects(max_depth=2), complex_objects(max_depth=2))
    def test_union_agrees_with_raw_path(self, left, right):
        assert union(left, right) == union(raw_twin(left), raw_twin(right))

    @given(complex_objects(max_depth=2), complex_objects(max_depth=2))
    def test_intersection_agrees_with_raw_path(self, left, right):
        assert intersection(left, right) == intersection(raw_twin(left), raw_twin(right))

    @given(complex_objects(max_depth=2), complex_objects(max_depth=2))
    def test_interned_lattice_results_are_canonical(self, left, right):
        # Meet and join of interned operands come back interned, so the
        # commutativity laws hold by identity, memoized or not.
        assert union(left, right) is union(right, left)
        assert intersection(left, right) is intersection(right, left)


DESCENDANTS_RULES = """
[doa: {abraham}].
[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].
"""


class TestClosurePreservation:
    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    def test_closure_identical_from_raw_and_interned_databases(self, generations, fanout):
        tree = make_genealogy(generations, fanout)
        interned_program = Program.from_source(
            DESCENDANTS_RULES, database=tree.family_object
        )
        raw_program = Program.from_source(
            DESCENDANTS_RULES, database=raw_twin(tree.family_object)
        )
        expected = interned_program.evaluate(engine="naive").value
        assert raw_program.evaluate(engine="naive").value == expected
        assert interned_program.evaluate(engine="seminaive").value == expected
        assert raw_program.evaluate(engine="seminaive").value == expected

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=1, max_value=3))
    def test_close_agrees_across_cache_lifecycles(self, fanout):
        tree = make_genealogy(2, fanout)
        program = Program.from_source(DESCENDANTS_RULES, database=tree.family_object)
        rules = program.rules
        warm = close(program.seed(), rules).value
        clear_object_caches()
        cold = close(program.seed(), rules).value
        assert cold is warm  # interned closures are canonical instances
