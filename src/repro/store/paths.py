"""Attribute paths: navigation into nested objects.

A :class:`Path` is a sequence of attribute names, written ``"family.children"``
in text form.  Paths address tuple attributes only; set elements are not
individually addressable (they have no names), but :func:`iter_paths` descends
*through* sets so an index over the path ``"r1.name"`` sees the ``name``
attribute of every element of the set stored at ``r1``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, Union

from repro.core.objects import BOTTOM, ComplexObject, SetObject, TupleObject

__all__ = ["Path", "get_path", "has_path", "iter_paths"]


class Path:
    """An immutable attribute path."""

    __slots__ = ("steps",)

    def __init__(self, steps: Union[str, Sequence[str]]):
        if isinstance(steps, str):
            parts = tuple(part for part in steps.split(".") if part)
        else:
            parts = tuple(steps)
        for part in parts:
            if not isinstance(part, str) or not part:
                raise ValueError(f"path steps must be non-empty strings: {part!r}")
        object.__setattr__(self, "steps", parts)

    def __setattr__(self, key, value):
        raise AttributeError("Path is immutable")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __eq__(self, other) -> bool:
        if isinstance(other, str):
            other = Path(other)
        if not isinstance(other, Path):
            return NotImplemented
        return self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"

    def __str__(self) -> str:
        return ".".join(self.steps)

    def child(self, step: str) -> "Path":
        """Return the path extended by one attribute."""
        return Path(self.steps + (step,))

    def parent(self) -> "Path":
        """Return the path without its last step (the empty path stays empty)."""
        return Path(self.steps[:-1])

    @property
    def is_root(self) -> bool:
        return not self.steps


def _as_path(path: Union[Path, str, Sequence[str]]) -> Path:
    return path if isinstance(path, Path) else Path(path)


def get_path(value: ComplexObject, path: Union[Path, str]) -> ComplexObject:
    """Follow ``path`` through tuple attributes; ⊥ when any step is missing.

    When a step lands on a set object the step is applied to every element and
    the results are collected into a set — so ``get_path(db, "r1.name")`` is
    the set of names appearing in relation ``r1``.
    """
    current = value
    for step in _as_path(path):
        if isinstance(current, TupleObject):
            current = current.get(step)
        elif isinstance(current, SetObject):
            gathered: List[ComplexObject] = []
            for element in current:
                if isinstance(element, TupleObject):
                    item = element.get(step)
                    if not item.is_bottom:
                        gathered.append(item)
            current = SetObject(gathered)
        else:
            return BOTTOM
    return current


def has_path(value: ComplexObject, path: Union[Path, str]) -> bool:
    """``True`` when following ``path`` reaches something other than ⊥."""
    result = get_path(value, path)
    if isinstance(result, SetObject):
        return len(result) > 0
    return not result.is_bottom


def iter_paths(value: ComplexObject, prefix: Path = None) -> Iterator[Tuple[Path, ComplexObject]]:
    """Yield every ``(path, value)`` pair of tuple attributes, descending through sets.

    The same path may be yielded several times with different values (once per
    set element); this is exactly what the path index wants.
    """
    current_prefix = prefix if prefix is not None else Path(())
    if isinstance(value, TupleObject):
        for name, item in value.items():
            child = current_prefix.child(name)
            yield (child, item)
            yield from iter_paths(item, child)
    elif isinstance(value, SetObject):
        for element in value:
            yield from iter_paths(element, current_prefix)
