"""EXPLAIN coverage: Program.explain, the CLI flags and the store's explain."""

import io

from repro import Program, parse_formula, parse_object
from repro.cli import main
from repro.store.database import ObjectDatabase
from repro.workloads import make_genealogy

DESCENDANTS = """
[doa: {abraham}].
[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].
[names: {Y}] :- [family: {[name: Y]}].
"""


class TestProgramExplain:
    def test_explain_renders_strata_estimates_and_actuals(self):
        tree = make_genealogy(3, 2)
        program = Program.from_source(DESCENDANTS, database=tree.family_object)
        text = program.explain()
        assert "program plan:" in text
        assert "fixpoint" in text and "apply once" in text
        assert "est " in text and "actual " in text
        assert "substitutions (actual)" in text
        # The optimizer's access paths are visible.
        assert "index name=$Y" in text

    def test_explain_without_analyze_shows_estimates_only(self):
        tree = make_genealogy(2, 2)
        program = Program.from_source(DESCENDANTS, database=tree.family_object)
        text = program.explain(analyze=False)
        assert "est " in text
        assert "actual " not in text

    def test_explain_with_query_appends_the_query_plan(self):
        tree = make_genealogy(2, 2)
        program = Program.from_source(DESCENDANTS, database=tree.family_object)
        text = program.explain(parse_formula("[doa: X]"))
        assert "query plan:" in text
        assert "[doa: X]" in text

    def test_explain_forwards_engine_guards(self):
        tree = make_genealogy(2, 2)
        program = Program.from_source(DESCENDANTS, database=tree.family_object)
        assert "program plan:" in program.explain(engine="seminaive")

    def test_query_routes_through_plans_and_agrees_with_interpret(self):
        from repro.calculus.interpretation import interpret

        tree = make_genealogy(3, 2)
        program = Program.from_source(DESCENDANTS, database=tree.family_object)
        answer = program.query(parse_formula("[doa: X]"))
        closure = program.evaluate()
        assert answer == interpret(parse_formula("[doa: X]"), closure.value)


class TestCliExplain:
    def run_cli(self, *argv):
        stream = io.StringIO()
        code = main(list(argv), output=stream)
        return code, stream.getvalue()

    def test_query_explain(self):
        code, text = self.run_cli(
            "query",
            "--database",
            "[r1: {[a: 1, b: x]}, r2: {[c: x, d: 9]}]",
            "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
            "--explain",
        )
        assert code == 0
        assert "query plan:" in text
        assert "cost-ordered" in text
        assert "actual" in text

    def test_run_explain(self, tmp_path):
        program_file = tmp_path / "prog.co"
        program_file.write_text(DESCENDANTS)
        code, text = self.run_cli(
            "run",
            f"@{program_file}",
            "--database",
            "[family: {[name: abraham, children: {[name: isaac]}]}]",
            "--explain",
            "--engine",
            "seminaive",
        )
        assert code == 0
        assert "program plan:" in text
        assert "fixpoint" in text
        # EXPLAIN replaces the closure output.
        assert "closure reached" not in text

    def test_store_query_explain(self, tmp_path):
        db_path = str(tmp_path / "store.wal")
        code, _ = self.run_cli(
            "store", "--db-path", db_path, "put", "family",
            "[family: {[name: abraham]}]",
        )
        assert code == 0
        code, text = self.run_cli(
            "store", "--db-path", db_path, "query",
            "[family: [family: {[name: X]}]]", "--explain",
        )
        assert code == 0
        assert "root-attribute pushdown" in text
        assert "query plan:" in text


class TestStoreExplain:
    def test_explain_query_notes_the_access_path(self):
        database = ObjectDatabase()
        database.put("family", parse_object("[family: {[name: abraham]}]"))
        database.put("other", parse_object("[x: 1]"))
        text = database.explain_query(parse_formula("[family: [family: {[name: X]}]]"))
        assert "reads 1 of 2 stored objects" in text
        assert "query plan:" in text

    def test_explain_query_reports_index_shortcircuit(self):
        database = ObjectDatabase()
        database.put("family", parse_object("[family: {[name: abraham]}]"))
        database.create_index("family.name")
        text = database.explain_query(
            parse_formula("[family: [family: {[name: nobody, kids: K]}]]")
        )
        assert "index short-circuit" in text

    def test_explain_query_against_one_object(self):
        database = ObjectDatabase()
        database.put("family", parse_object("[family: {[name: abraham]}]"))
        text = database.explain_query(
            parse_formula("[family: {[name: X]}]"), against="family"
        )
        assert "stored object 'family'" in text
