"""A relational database: a named collection of relations.

The paper observes that a relational database is just one particular complex
object — a tuple of relations, each a set of flat tuples (Example 2.1 and the
discussion after Definition 4.2).  :class:`RelationalDatabase` is the flat
counterpart used by the baselines; :func:`repro.relational.bridge.database_to_object`
converts it into exactly that complex object.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence

from repro.relational.relation import Relation

__all__ = ["RelationalDatabase"]


class RelationalDatabase:
    """An immutable mapping from relation names to :class:`Relation` values."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Optional[Mapping[str, Relation]] = None):
        cleaned: Dict[str, Relation] = {}
        if relations:
            for name, relation in relations.items():
                if not isinstance(relation, Relation):
                    raise TypeError(
                        f"relation {name!r} must be a Relation, got {type(relation).__name__}"
                    )
                cleaned[name] = relation.with_name(name)
        object.__setattr__(self, "_relations", dict(sorted(cleaned.items())))

    def __setattr__(self, key, value):
        raise AttributeError("RelationalDatabase is immutable")

    # -- mapping protocol -----------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def get(self, name: str, default: Optional[Relation] = None) -> Optional[Relation]:
        return self._relations.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> Sequence[str]:
        return tuple(self._relations)

    def relations(self) -> Sequence[Relation]:
        return tuple(self._relations.values())

    def items(self):
        return tuple(self._relations.items())

    # -- functional updates ----------------------------------------------------------
    def with_relation(self, name: str, relation: Relation) -> "RelationalDatabase":
        """Return a new database with ``name`` bound to ``relation``."""
        updated = dict(self._relations)
        updated[name] = relation.with_name(name)
        return RelationalDatabase(updated)

    def without_relation(self, name: str) -> "RelationalDatabase":
        """Return a new database with ``name`` removed (no error if absent)."""
        updated = {k: v for k, v in self._relations.items() if k != name}
        return RelationalDatabase(updated)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RelationalDatabase):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}({len(rel)})" for name, rel in self._relations.items())
        return f"<RelationalDatabase {inner}>"
