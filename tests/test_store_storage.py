"""Unit tests for the storage engines (repro.store.storage)."""

import json
import os

import pytest

from repro import parse_object
from repro.core.builder import obj
from repro.core.errors import StoreError
from repro.store.storage import FileStorage, MemoryStorage, StorageEngine


class TestMemoryStorage:
    def test_read_write_delete(self):
        storage = MemoryStorage()
        assert storage.read("x") is None
        storage.write("x", obj(1))
        assert storage.read("x") == obj(1)
        storage.write("x", obj(2))
        assert storage.read("x") == obj(2)
        storage.delete("x")
        assert storage.read("x") is None

    def test_delete_is_idempotent(self):
        MemoryStorage().delete("missing")

    def test_names_and_items_sorted(self):
        storage = MemoryStorage()
        storage.write("b", obj(2))
        storage.write("a", obj(1))
        assert storage.names() == ("a", "b")
        assert [name for name, _ in storage.items()] == ["a", "b"]

    def test_rejects_non_objects(self):
        with pytest.raises(StoreError):
            MemoryStorage().write("x", 1)


class TestFileStorage:
    def test_write_and_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        storage = FileStorage(path)
        family = parse_object("[family: {[name: abraham]}]")
        storage.write("family", family)
        storage.write("numbers", obj([1, 2, 3]))
        storage.close()

        reloaded = FileStorage(path)
        assert reloaded.read("family") == family
        assert reloaded.read("numbers") == obj([1, 2, 3])
        assert reloaded.names() == ("family", "numbers")
        reloaded.close()

    def test_latest_version_wins_after_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        storage = FileStorage(path)
        storage.write("x", obj(1))
        storage.write("x", obj(2))
        storage.delete("x")
        storage.write("x", obj(3))
        storage.close()
        assert FileStorage(path).read("x") == obj(3)

    def test_delete_survives_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        storage = FileStorage(path)
        storage.write("x", obj(1))
        storage.delete("x")
        storage.close()
        assert FileStorage(path).read("x") is None

    def test_compact_shrinks_the_log(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        storage = FileStorage(path)
        for version in range(10):
            storage.write("x", obj(version))
        size_before = os.path.getsize(path)
        storage.compact()
        size_after = os.path.getsize(path)
        assert size_after < size_before
        assert storage.read("x") == obj(9)
        storage.close()
        assert FileStorage(path).read("x") == obj(9)

    def test_corrupt_log_reported(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")

    def test_unknown_record_op_reported(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "truncate", "name": "x"}) + "\n")
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")

    def test_missing_name_reported(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "write", "data": {"k": "B"}}) + "\n")
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")

    def test_bad_corruption_mode_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            FileStorage(str(tmp_path / "store.jsonl"), on_corruption="ignore")

    def test_blank_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        storage = FileStorage(path)
        storage.write("x", obj(1))
        storage.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert FileStorage(path).read("x") == obj(1)


class TestWriteAheadLog:
    """Group commit, checksummed framing and torn-tail crash recovery."""

    def test_apply_batch_is_one_log_record(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.apply_batch({"a": obj(1), "b": obj(2), "c": obj(3)})
        storage.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        reloaded = FileStorage(path)
        assert reloaded.names() == ("a", "b", "c")
        reloaded.close()

    def test_batch_mixes_writes_and_deletes(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.write("old", obj(1))
        storage.apply_batch({"old": None, "new": obj(2)})
        storage.close()
        reloaded = FileStorage(path)
        assert reloaded.read("old") is None
        assert reloaded.read("new") == obj(2)
        reloaded.close()

    def test_empty_batch_appends_nothing(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.apply_batch({})
        storage.close()
        assert os.path.getsize(path) == 0

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.write("committed", obj(1))
        storage.close()
        size_committed = os.path.getsize(path)
        # Simulate a crash mid-append: a partial record with no newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op":"commit","writes":{"in_flight":{"k"')
        recovered = FileStorage(path)
        assert recovered.read("committed") == obj(1)
        assert recovered.read("in_flight") is None
        assert recovered.names() == ("committed",)
        assert recovered.torn_bytes_dropped > 0
        # The tail was physically truncated, so new appends start clean.
        assert os.path.getsize(path) == size_committed
        recovered.write("after", obj(2))
        recovered.close()
        reloaded = FileStorage(path)
        assert reloaded.names() == ("after", "committed")
        assert reloaded.torn_bytes_dropped == 0
        reloaded.close()

    def test_torn_tail_of_empty_log_is_dropped(self, tmp_path):
        path = str(tmp_path / "store.wal")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"op":"commit"')  # no newline: never committed
        storage = FileStorage(path)
        assert storage.names() == ()
        storage.close()

    def test_complete_record_with_bad_checksum_is_corruption(self, tmp_path):
        from repro.store.codec import frame_record

        path = str(tmp_path / "store.wal")
        line = frame_record({"op": "commit", "writes": {}})
        damaged = line.replace('"commit"', '"COMMIT"')
        assert damaged != line
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(damaged)
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")

    def test_commit_record_without_writes_is_corruption(self, tmp_path):
        path = str(tmp_path / "store.wal")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "commit"}) + "\n")
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")

    def test_legacy_per_change_records_still_replay(self, tmp_path):
        from repro.store.codec import encode_json

        path = str(tmp_path / "store.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "write", "name": "x", "data": encode_json(obj(1))}) + "\n")
            handle.write(json.dumps({"op": "write", "name": "y", "data": encode_json(obj(2))}) + "\n")
            handle.write(json.dumps({"op": "delete", "name": "y"}) + "\n")
        storage = FileStorage(path)
        assert storage.read("x") == obj(1)
        assert storage.read("y") is None
        storage.close()

    def test_non_utf8_log_is_corruption_not_a_crash(self, tmp_path):
        path = str(tmp_path / "store.wal")
        with open(path, "wb") as handle:
            handle.write(b'{"op":"commit","writes":{}}\xff\xfe\n')
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")

    def test_delete_of_absent_name_appends_nothing(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.write("x", obj(1))
        size = os.path.getsize(path)
        storage.delete("missing")
        assert os.path.getsize(path) == size
        storage.close()

    def test_legacy_engine_subclasses_still_work(self):
        # An engine written against the original interface (write/delete
        # only) must keep working through the base apply_batch fallback.
        class LegacyEngine(StorageEngine):
            def __init__(self):
                self.data = {}

            def read(self, name):
                return self.data.get(name)

            def write(self, name, value):
                self.data[name] = value

            def delete(self, name):
                self.data.pop(name, None)

            def names(self):
                return tuple(sorted(self.data))

        engine = LegacyEngine()
        engine.apply_batch({"a": obj(1), "b": obj(2)})
        engine.apply_batch({"a": None, "c": obj(3)})
        assert engine.names() == ("b", "c")
        with pytest.raises(StoreError):
            engine.apply_batch({"bad": "not-an-object"})

    def test_memory_engine_batches_atomically(self):
        storage = MemoryStorage()
        storage.write("keep", obj(1))
        with pytest.raises(StoreError):
            storage.apply_batch({"keep": obj(2), "bad": "not-an-object"})
        # The invalid batch changed nothing.
        assert storage.read("keep") == obj(1)
        assert storage.read("bad") is None

    def test_file_engine_rejects_bad_batch_without_touching_the_log(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.write("keep", obj(1))
        size = os.path.getsize(path)
        with pytest.raises(StoreError):
            storage.apply_batch({"keep": obj(2), "bad": "not-an-object"})
        assert os.path.getsize(path) == size
        assert storage.read("keep") == obj(1)
        storage.close()


class TestQuarantineRecovery:
    """The default corruption policy: quarantine the damage, keep the prefix."""

    @staticmethod
    def _write_log_with_mid_corruption(path):
        """Three committed records with the middle one damaged in place.

        Returns the size of the intact prefix (the first record).
        """
        storage = FileStorage(path)
        storage.write("a", obj(1))
        prefix_size = os.path.getsize(path)
        storage.write("b", obj(2))
        storage.write("c", obj(3))
        storage.close()
        with open(path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        lines[1] = lines[1].replace(b'"commit"', b'"COMMIT"')
        with open(path, "wb") as handle:
            handle.write(b"\n".join(lines))
        return prefix_size

    def test_mid_log_corruption_is_quarantined_by_default(self, tmp_path):
        path = str(tmp_path / "store.wal")
        prefix_size = self._write_log_with_mid_corruption(path)
        recovered = FileStorage(path)
        # Only the intact prefix survives: replaying past a gap would break
        # prefix consistency, so the damaged record AND its suffix move out.
        assert recovered.names() == ("a",)
        assert recovered.read("a") == obj(1)
        assert recovered.quarantined_records == 2
        assert recovered.quarantined_bytes > 0
        assert os.path.getsize(path) == prefix_size
        assert os.path.exists(recovered.quarantine_path)
        assert os.path.getsize(recovered.quarantine_path) == recovered.quarantined_bytes
        # The store stays writable after quarantine.
        recovered.write("after", obj(9))
        recovered.close()
        reloaded = FileStorage(path)
        assert reloaded.names() == ("a", "after")
        assert reloaded.quarantined_records == 0
        reloaded.close()

    def test_raise_mode_leaves_the_log_untouched(self, tmp_path):
        path = str(tmp_path / "store.wal")
        self._write_log_with_mid_corruption(path)
        size = os.path.getsize(path)
        with pytest.raises(StoreError):
            FileStorage(path, on_corruption="raise")
        assert os.path.getsize(path) == size
        assert not os.path.exists(path + ".quarantine")

    def test_clean_log_has_no_quarantine(self, tmp_path):
        path = str(tmp_path / "store.wal")
        storage = FileStorage(path)
        storage.write("x", obj(1))
        storage.close()
        reloaded = FileStorage(path)
        assert reloaded.quarantined_records == 0
        assert reloaded.quarantined_bytes == 0
        assert not os.path.exists(reloaded.quarantine_path)
        reloaded.close()
