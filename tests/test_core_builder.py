"""Unit tests for the Python-literal constructors (repro.core.builder)."""

import pytest

from repro.core.builder import atom, obj, python_value, set_of, tup
from repro.core.errors import NotAnObjectError
from repro.core.objects import BOTTOM, TOP, Atom, SetObject, TupleObject


class TestObj:
    def test_atoms(self):
        assert obj(3) == Atom(3)
        assert obj("john") == Atom("john")
        assert obj(True) == Atom(True)
        assert obj(2.5) == Atom(2.5)

    def test_none_is_bottom(self):
        assert obj(None) is BOTTOM

    def test_dict_is_tuple(self):
        assert obj({"name": "peter", "age": 25}) == TupleObject(
            {"name": Atom("peter"), "age": Atom(25)}
        )

    def test_null_valued_attribute_is_absent(self):
        assert obj({"name": "peter", "age": None}) == obj({"name": "peter"})

    def test_collections_are_sets(self):
        expected = SetObject([Atom(1), Atom(2)])
        assert obj([1, 2]) == expected
        assert obj((1, 2)) == expected
        assert obj({1, 2}) == expected
        assert obj(frozenset({1, 2})) == expected

    def test_nested_structures(self):
        value = obj({"name": {"first": "john", "last": "doe"}, "children": ["mary", "sue"]})
        assert value.get("name").get("first") == Atom("john")
        assert Atom("sue") in value.get("children")

    def test_existing_objects_pass_through(self):
        value = Atom(5)
        assert obj(value) is value

    def test_rejects_non_string_keys(self):
        with pytest.raises(NotAnObjectError):
            obj({1: "x"})

    def test_rejects_unsupported_types(self):
        with pytest.raises(NotAnObjectError):
            obj(object())


class TestHelpers:
    def test_atom_helper(self):
        assert atom(7) == Atom(7)

    def test_tup_helper_with_kwargs(self):
        assert tup(name="peter", age=25) == obj({"name": "peter", "age": 25})

    def test_tup_helper_with_mapping(self):
        assert tup({"first name": "john"}) == TupleObject({"first name": Atom("john")})

    def test_set_of_helper(self):
        assert set_of("john", "mary") == obj(["john", "mary"])


class TestPythonValue:
    def test_round_trip_atoms_and_none(self):
        assert python_value(obj(3)) == 3
        assert python_value(BOTTOM) is None

    def test_round_trip_structures(self):
        original = {"name": "peter", "children": frozenset({"max", "susan"})}
        assert python_value(obj(original)) == original

    def test_set_of_tuples_becomes_list(self):
        value = obj([{"a": 1}, {"a": 2}])
        converted = python_value(value)
        assert isinstance(converted, list)
        assert {"a": 1} in converted and {"a": 2} in converted

    def test_top_has_no_python_form(self):
        with pytest.raises(NotAnObjectError):
            python_value(TOP)
