"""Path indexes: accelerate pattern selections over stored collections.

A :class:`PathIndex` maps the values found at one attribute path (descending
through sets, see :func:`repro.store.paths.iter_paths`) to the names of the
stored objects containing them.  The :class:`ObjectDatabase` consults its
indexes before falling back to a scan when answering ``find`` queries, and the
``bench_store`` benchmark measures the difference.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple, Union

from repro.core.objects import BOTTOM, ComplexObject, SetObject
from repro.store.paths import Path, get_path

__all__ = ["PathIndex"]


class PathIndex:
    """An inverted index from values at a path to object names."""

    def __init__(self, path: Union[Path, str]):
        self.path = path if isinstance(path, Path) else Path(path)
        self._entries: Dict[ComplexObject, Set[str]] = {}
        self._indexed: Set[str] = set()

    def __repr__(self) -> str:
        return f"<PathIndex on {self.path} covering {len(self._indexed)} objects>"

    # -- maintenance ---------------------------------------------------------------
    def add(self, name: str, value: ComplexObject) -> None:
        """Index the stored object ``value`` under ``name``."""
        self.remove(name)
        for key in self._keys(value):
            self._entries.setdefault(key, set()).add(name)
        self._indexed.add(name)

    def remove(self, name: str) -> None:
        """Drop ``name`` from the index (no error when absent)."""
        if name not in self._indexed:
            return
        empty_keys = []
        for key, names in self._entries.items():
            names.discard(name)
            if not names:
                empty_keys.append(key)
        for key in empty_keys:
            del self._entries[key]
        self._indexed.discard(name)

    def rebuild(self, items: Iterable[Tuple[str, ComplexObject]]) -> None:
        """Re-index the whole collection from scratch."""
        self._entries.clear()
        self._indexed.clear()
        for name, value in items:
            self.add(name, value)

    def _keys(self, value: ComplexObject) -> Set[ComplexObject]:
        located = get_path(value, self.path)
        if isinstance(located, SetObject):
            return set(located.elements)
        if located is BOTTOM:
            return set()
        return {located}

    # -- queries --------------------------------------------------------------------
    def lookup(self, key: ComplexObject) -> FrozenSet[str]:
        """Names of the objects whose path value equals (or contains) ``key``.

        Stored values and probe keys are both interned, so the dict probe
        resolves on cached hashes and pointer equality — no tree traversal.
        """
        return frozenset(self._entries.get(key, set()))

    def covers(self, name: str) -> bool:
        """``True`` when ``name`` has been indexed."""
        return name in self._indexed

    def keys(self) -> Tuple[ComplexObject, ...]:
        """Every distinct indexed key, in canonical order."""
        return tuple(sorted(self._entries, key=lambda item: item.sort_key()))

    def __len__(self) -> int:
        return len(self._entries)
