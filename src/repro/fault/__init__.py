"""repro.fault — deterministic fault injection and cooperative deadlines.

The robustness toolkit the store and session layers are tested (and hardened)
with:

* :mod:`repro.fault.injection` — seeded, deterministic fault injection:
  named injection points wired through the store (``store.wal.open``,
  ``store.wal.append``, ``store.wal.fsync``, ``store.lock.write_held``,
  ``store.lock.read_held``) fire failures, simulated crashes, torn writes or
  artificial delays according to installed :class:`FaultSpec` rules.
  Installation is a context manager (:func:`inject`) or the ``REPRO_FAULTS``
  environment variable; with nothing installed every call site is one global
  ``None`` check, a cost ``benchmarks/run_fault_benchmarks.py`` pins at
  ≤1.05x a hook-stripped baseline;
* :mod:`repro.fault.deadline` — the :class:`Deadline` object behind
  ``Session.execute(..., timeout_ms=)``, checked cooperatively at executor
  instance steps and engine fixpoint-round boundaries;
* :mod:`repro.fault.sweep` — the crash-consistency sweep harness: simulate a
  crash at every WAL append/fsync boundary (and every byte offset) of a
  scripted workload and assert recovery is exactly a prefix of the committed
  history.  Import it explicitly (``repro.fault.sweep``); it depends on the
  store, which itself imports :mod:`repro.fault.injection`, so it is not
  loaded here.
"""

from repro.core.errors import InjectedFault, LockTimeout, QueryTimeout
from repro.fault.deadline import Deadline
from repro.fault.injection import (
    FaultInjector,
    FaultSpec,
    KNOWN_POINTS,
    SimulatedCrash,
    active_injector,
    fire,
    inject,
    install,
    install_from_env,
    parse_spec,
    uninstall,
)

__all__ = [
    "Deadline",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_POINTS",
    "LockTimeout",
    "QueryTimeout",
    "SimulatedCrash",
    "active_injector",
    "fire",
    "inject",
    "install",
    "install_from_env",
    "parse_spec",
    "uninstall",
]
