"""The session facade (repro.api): prepared, parameterized, streaming queries.

Covers the public contract of :func:`repro.connect` / :class:`Session`:

* one pipeline over both backends (memory and WAL);
* ``prepare`` → ``execute`` skips parse+optimize on re-execution (cache-hit
  counters), and store commits invalidate exactly the stale entries;
* ``$parameter`` binding at execute time, with strict missing/unknown checks;
* cursors stream lazily, in the materialized executor's order, with
  ``one()`` / ``all()`` / ``bindings()`` / ``explain()`` terminals;
* rule registration and version-cached closures;
* the legacy entry points (``repro.interpret``, ``Program.query``,
  ``ObjectDatabase.query``) delegate here, warning but agreeing.
"""

import warnings

import pytest

import repro
from repro import ParameterError, ReproError, Session, connect, parse_formula, parse_object
from repro.calculus.interpretation import interpret as baseline_interpret
from repro.core.errors import ComplexObjectError, StoreError
from repro.core.objects import BOTTOM


PEOPLE = "{[name: peter, age: 25], [name: john, age: 7], [name: mary, age: 13]}"


@pytest.fixture
def session():
    with connect() as s:
        s.put("r1", parse_object(PEOPLE))
        yield s


class TestConnect:
    def test_memory_session_round_trip(self, session):
        assert session.get("r1") == parse_object(PEOPLE)
        assert session.names() == ("r1",)

    def test_wal_session_persists(self, tmp_path):
        path = str(tmp_path / "api.wal")
        with connect(path) as s:
            s.put("family", parse_object("[family: {[name: abraham]}]"))
        with connect(path) as s:
            assert s.get("family") == parse_object("[family: {[name: abraham]}]")
            assert s.query("[family: [family: {[name: X]}]]") == parse_object(
                "[family: [family: {[name: abraham]}]]"
            )

    def test_repro_error_is_the_catch_all(self):
        assert ReproError is ComplexObjectError
        assert issubclass(ParameterError, ReproError)
        assert issubclass(StoreError, ReproError)


class TestPreparedQueries:
    def test_prepared_reexecution_hits_the_plan_cache(self, session):
        prepared = session.prepare("[r1: {[name: $who, age: A]}]")
        assert prepared.parameters == frozenset({"who"})
        first = prepared.execute(who="peter").all()
        assert first == parse_object("[r1: {[name: peter, age: 25]}]")
        before = session.cache_info()
        assert before["plan_misses"] == 1
        for who in ("john", "mary", "peter"):
            prepared.execute(who=who).all()
        after = session.cache_info()
        assert after["plan_misses"] == 1  # no re-planning
        assert after["plan_hits"] == before["plan_hits"] + 3

    def test_commit_invalidates_the_cached_plan(self, session):
        prepared = session.prepare("[r1: {[name: $who, age: A]}]")
        prepared.execute(who="peter").all()
        session.put("r1", parse_object("{[name: peter, age: 30]}"))
        assert prepared.execute(who="peter").all() == parse_object(
            "[r1: {[name: peter, age: 30]}]"
        )
        assert session.cache_info()["plan_misses"] == 2

    def test_parameter_binding_equals_substituted_source(self, session):
        prepared = session.prepare("[r1: {[name: $who, age: A]}]")
        for who in ("peter", "john", "mary"):
            direct = session.query(parse_formula(f"[r1: {{[name: {who}, age: A]}}]"))
            assert prepared.execute(who=who).all() == direct

    def test_params_accepts_mapping_and_keywords(self, session):
        prepared = session.prepare("[r1: {[name: $who, age: $age]}]")
        as_mapping = prepared.execute({"who": "john", "age": 7}).all()
        as_keywords = prepared.execute(who="john", age=7).all()
        assert as_mapping == as_keywords != BOTTOM

    def test_missing_parameter_is_an_error(self, session):
        prepared = session.prepare("[r1: {[name: $who]}]")
        with pytest.raises(ParameterError, match="who"):
            prepared.execute()

    def test_unknown_parameter_is_an_error(self, session):
        prepared = session.prepare("[r1: {[name: $who]}]")
        with pytest.raises(ParameterError, match="ghost"):
            prepared.execute(who="peter", ghost=1)

    def test_parameterless_query_rejects_params(self, session):
        with pytest.raises(ParameterError):
            session.query("[r1: {[name: X]}]", {"who": "peter"})

    def test_misspelled_query_option_is_rejected(self, session):
        with pytest.raises(ReproError, match="agains"):
            session.query("[r1: {[name: X]}]", agains="r1")
        with pytest.raises(ReproError, match="max_iteration"):
            session.query("[r1: {[name: X]}]", on_closure=True, max_iteration=5)
        with pytest.raises(ReproError, match="option"):
            session.prepare("[r1: {[name: X]}]", allow_botom=True)

    def test_prepared_explain_names_the_plan(self, session):
        prepared = session.prepare("[r1: {[name: $who, age: A]}]")
        rendered = prepared.explain(who="peter")
        assert "query plan" in rendered
        assert "peter" in rendered

    def test_prepare_accepts_formula_objects(self, session):
        prepared = session.prepare(parse_formula("[r1: {[name: X]}]"))
        assert prepared.execute().all() == session.query("[r1: {[name: X]}]")


class TestCursor:
    def test_streaming_matches_agree_with_the_materialized_answer(self, session):
        streamed = list(session.execute("[r1: {[name: X, age: A]}]"))
        assert len(streamed) == 3
        from repro.core.lattice import union_all

        assert union_all(streamed) == session.query("[r1: {[name: X, age: A]}]")

    def test_one_returns_the_first_match_lazily(self, session):
        cursor = session.execute("[r1: {[name: X]}]")
        first = cursor.one()
        assert not first.is_bottom
        # all() after partial consumption still folds the complete answer.
        assert cursor.all() == session.query("[r1: {[name: X]}]")

    def test_one_on_an_empty_stream_is_bottom(self, session):
        cursor = session.execute("[r1: {[name: nobody, age: A]}]")
        assert cursor.one() is BOTTOM
        assert cursor.all() is BOTTOM

    def test_bindings_stream_substitutions(self, session):
        cursor = session.execute("[r1: {[name: X, age: A]}]")
        names = {binding["X"].value for binding in cursor.bindings()}
        assert names == {"peter", "john", "mary"}
        assert cursor.all() == session.query("[r1: {[name: X, age: A]}]")

    def test_cursor_explain_matches_session_explain(self, session):
        cursor = session.execute("[r1: {[name: X]}]")
        assert cursor.explain() == session.explain("[r1: {[name: X]}]")

    def test_streaming_order_equals_match_plan_order(self, session):
        from repro.plan import (
            DatabaseStatistics,
            compile_body,
            iter_match_plan,
            match_plan,
            optimize_body,
        )

        target = session.database.as_object()
        body = parse_formula("[r1: {[name: X, age: A], [name: Y]}]")
        plan = optimize_body(compile_body(body), DatabaseStatistics.collect(target))
        assert list(iter_match_plan(plan, target)) == match_plan(plan, target)


class TestQueriesAndTargets:
    def test_against_targets_one_stored_object(self, session):
        answer = session.query("{[name: X, age: 25]}", against="r1")
        assert answer == parse_object("{[name: peter, age: 25]}")

    def test_against_missing_name_raises_store_error(self, session):
        with pytest.raises(StoreError):
            session.query("X", against="ghost")

    def test_allow_bottom_selects_the_literal_semantics(self, session):
        query = parse_formula("[r1: {[name: X, kids: {K}]}]")
        target = session.database.as_object()
        assert session.query(query, allow_bottom=True) == baseline_interpret(
            query, target, allow_bottom=True
        )

    def test_store_access_counters_still_account(self, session):
        before = session.database.access_stats["query_root_pushdowns"]
        session.query("[r1: {[name: X]}]")
        assert session.database.access_stats["query_root_pushdowns"] == before + 1

    def test_seeded_session_queries_the_seed(self):
        session = Session.over_object(parse_object("[r1: {[a: 1], [a: 2]}]"))
        assert session.query("[r1: {[a: X]}]") == parse_object("[r1: {[a: 1], [a: 2]}]")


class TestRulesAndClosures:
    FAMILY = (
        "[family: {[name: abraham, children: {[name: isaac]}],"
        " [name: isaac, children: {[name: jacob]}]}]"
    )
    RULES = (
        "[doa: {abraham}].\n"
        "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].\n"
    )

    def test_closure_over_store_and_cache(self):
        with connect(rules=self.RULES) as session:
            # The stored name joins the whole-database object the rules close.
            session.put("family", parse_object(self.FAMILY)["family"])
            result = session.close(engine="seminaive")
            assert "jacob" in result.value.to_text()
            again = session.close(engine="seminaive")
            assert again is result  # cached: same version, same guards
            info = session.cache_info()
            assert info["closure_hits"] == 1 and info["closure_misses"] == 1

    def test_commit_invalidates_the_closure(self):
        with connect(rules=self.RULES) as session:
            session.put("family", parse_object(self.FAMILY)["family"])
            first = session.close()
            session.put("family", parse_object(
                "{[name: abraham, children: {[name: sarah]}]}"
            ))
            second = session.close()
            assert second is not first
            assert "sarah" in second.value.to_text()
            assert "jacob" not in second.value.to_text()

    def test_query_on_closure_reuses_the_cached_evaluation(self):
        session = Session.over_object(parse_object(self.FAMILY), rules=self.RULES)
        session.close(engine="seminaive")
        answer = session.query("[doa: X]", on_closure=True, engine="seminaive")
        assert answer == parse_object("[doa: {abraham, isaac, jacob}]")
        info = session.cache_info()
        assert info["closure_misses"] == 1 and info["closure_hits"] == 1

    def test_register_accepts_text_rules_and_rulesets(self):
        session = Session.over_object(parse_object(self.FAMILY))
        session.register(self.RULES)
        from repro.parser import parse_rule

        session.register(parse_rule("[names: {X}] :- [family: {[name: X]}]."))
        closure = session.close(engine="naive").value
        assert "names" in closure.to_text()

    def test_close_is_the_paper_closure_not_a_resource_release(self):
        # close() computes R*(O); the session stays usable afterwards.
        session = Session.over_object(parse_object(self.FAMILY), rules=self.RULES)
        session.close()
        assert session.query("[family: {[name: X]}]") != BOTTOM


class TestBottomSemantics:
    """A session seeded with ⊥ is the paper's empty database, not the store's []."""

    def test_seeded_bottom_queries_answer_bottom(self):
        session = Session.over_object(BOTTOM)
        assert session.query("X") is BOTTOM

    def test_interpret_shim_on_bottom_matches_the_baseline(self):
        query = parse_formula("X")
        with pytest.warns(DeprecationWarning):
            assert repro.interpret(query, BOTTOM) == baseline_interpret(query, BOTTOM)

    def test_closure_over_bottom_database_is_facts_only(self):
        session = Session.over_object(BOTTOM, rules="[doa: {abraham}].")
        result = session.close(engine="naive")
        assert result.value == parse_object("[doa: {abraham}]")
        assert not result.value.is_top

    def test_cli_run_without_database_stays_bottom_seeded(self):
        import io
        from repro.cli import main

        buffer = io.StringIO()
        code = main(["run", "[doa: {abraham}]."], output=buffer)
        assert code == 0
        assert "top" not in buffer.getvalue()
        assert "doa" in buffer.getvalue()

    def test_empty_store_backed_session_keeps_snapshot_semantics(self):
        # Unseeded sessions mirror the store: an empty store's whole-database
        # object is the empty tuple, exactly as as_object() always answered.
        with connect() as session:
            assert session.query("X") == session.database.as_object()


class TestCacheEviction:
    def test_lru_keeps_the_hot_prepared_plan_under_churn(self, monkeypatch):
        import repro.api as api

        monkeypatch.setattr(api, "_CACHE_LIMIT", 4)
        session = Session.over_object(parse_object("[r1: {[a: 1]}]"))
        hot = session.prepare("[r1: {[a: $x]}]")
        hot.execute(x=1).all()
        for index in range(4):
            session.query(parse_formula(f"[r1: {{[a: X, b: {index}]}}]"))
            hot.execute(x=1).all()
        assert session.cache_info()["plans_cached"] <= 4
        misses = session.cache_info()["plan_misses"]
        hot.execute(x=1).all()
        assert session.cache_info()["plan_misses"] == misses

    def test_distinct_bindings_do_not_churn_the_compile_cache(self):
        from repro.plan.compile import compile_body

        with connect() as session:
            session.put("r1", parse_object("{[a: 1, b: x], [a: 2, b: y]}"))
            session.database.create_index("b")
            prepared = session.prepare("[r1: {[a: $x, b: B]}]")
            prepared.execute(x=0).all()  # first execution plans (and compiles)
            before = compile_body.cache_info().currsize
            for value in range(1, 10):
                prepared.execute(x=value).all()
            assert compile_body.cache_info().currsize == before

    def test_refuted_bindings_hit_the_plan_cache_without_compiling(self):
        from repro.plan.compile import compile_body

        with connect() as session:
            session.put("family", parse_object("{[name: abraham], [name: isaac]}"))
            session.database.create_index("name")
            prepared = session.prepare("[family: {[name: $who, kids: K]}]")
            prepared.execute(who="abraham").all()
            before = compile_body.cache_info().currsize
            shorts = session.database.access_stats["query_index_shortcircuits"]
            for index in range(5):
                assert prepared.execute(who=f"nobody{index}").all().is_bottom
            assert compile_body.cache_info().currsize == before
            assert (
                session.database.access_stats["query_index_shortcircuits"]
                == shorts + 5
            )
            assert session.cache_info()["plan_hits"] >= 5

    def test_shim_facade_is_per_thread(self):
        import threading

        from repro.store.database import ObjectDatabase

        database = ObjectDatabase()
        database.put("r1", parse_object("{[a: 1], [a: 2]}"))
        expected = parse_object("[r1: {[a: 1], [a: 2]}]")
        errors = []

        def worker():
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    for _ in range(20):
                        assert database.query("[r1: {[a: X]}]") == expected
            except Exception as error:  # pragma: no cover - failure evidence
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestLegacyShims:
    def test_interpret_shim_warns_and_agrees(self):
        database = parse_object("[r1: {[a: 1, b: x], [a: 2, b: y]}]")
        query = parse_formula("[r1: {[a: X, b: x]}]")
        with pytest.warns(DeprecationWarning):
            shimmed = repro.interpret(query, database)
        assert shimmed == baseline_interpret(query, database)

    def test_program_query_shim_warns_and_agrees(self):
        program = repro.Program.from_source(
            TestRulesAndClosures.RULES,
            database=parse_object(TestRulesAndClosures.FAMILY),
        )
        with pytest.warns(DeprecationWarning):
            answer = program.query(parse_formula("[doa: X]"))
        assert answer == parse_object("[doa: {abraham, isaac, jacob}]")

    def test_object_database_query_shim_warns_and_agrees(self):
        from repro.store.database import ObjectDatabase

        database = ObjectDatabase()
        database.put("r1", parse_object(PEOPLE))
        query = parse_formula("[r1: {[name: X]}]")
        with pytest.warns(DeprecationWarning):
            shimmed = database.query(query)
        assert shimmed == baseline_interpret(query, database.as_object())

    def test_shimmed_database_query_reuses_one_facade_session(self):
        from repro.store.database import ObjectDatabase

        database = ObjectDatabase()
        database.put("r1", parse_object(PEOPLE))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            database.query("[r1: {[name: X]}]")
            database.query("[r1: {[name: X]}]")
        facade = database._facade()
        assert facade.cache_info()["plan_hits"] >= 1


class TestParameterSyntax:
    def test_parameters_parse_in_formulae_only(self):
        formula = parse_formula("[r1: {[name: $who]}]")
        assert formula.parameters() == frozenset({"who"})
        assert formula.variables() == frozenset()
        assert formula.to_text() == "[r1: {[name: $who]}]"

    def test_parameters_rejected_in_ground_objects(self):
        with pytest.raises(ReproError):
            parse_object("[name: $who]")

    def test_parameters_rejected_in_programs(self):
        from repro.parser import parse_program

        with pytest.raises(ReproError):
            parse_program("[doa: {$seed}].")

    def test_bare_dollar_is_a_lex_error(self):
        with pytest.raises(ReproError):
            parse_formula("[r1: $]")

    def test_spine_parameter_binds_like_a_constant(self, session):
        prepared = session.prepare("[r1: $value]")
        answer = prepared.execute(value=parse_object("{[name: peter, age: 25]}")).all()
        assert answer == parse_object("[r1: {[name: peter, age: 25]}]")

    def test_unbound_plan_execution_raises(self):
        from repro.plan import compile_body, match_plan

        plan = compile_body(parse_formula("[r1: {[name: $who]}]"))
        with pytest.raises(ParameterError):
            match_plan(plan, parse_object("[r1: {[name: peter]}]"))
