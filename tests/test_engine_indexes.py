"""Unit tests for match indexes (repro.engine.indexes)."""

from repro import parse_object, parse_rule
from repro.calculus.terms import Constant, formula, var
from repro.core.objects import Atom, BOTTOM
from repro.engine.indexes import IndexStore, MatchIndex, element_keys
from repro.store.paths import Path


class TestElementKeys:
    def test_static_key_from_atom_constant(self):
        element = formula({"name": Atom("abraham"), "age": var("A")})
        keys = element_keys(element)
        assert keys[0] == (Path("name"), Atom("abraham"))

    def test_dynamic_key_from_variable(self):
        element = formula({"name": var("Y")})
        assert element_keys(element) == ((Path("name"), "Y"),)

    def test_static_keys_come_first(self):
        element = formula({"a": var("X"), "b": Atom(1)})
        keys = element_keys(element)
        assert keys[0] == (Path("b"), Atom(1))
        assert (Path("a"), "X") in keys

    def test_root_keys_for_atomic_elements(self):
        assert element_keys(Constant(Atom("abraham"))) == ((Path(()), Atom("abraham")),)
        assert element_keys(var("Y")) == ((Path(()), "Y"),)

    def test_nothing_below_nested_sets(self):
        element = parse_rule(
            "[out: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
        ).body.get("family").elements[0]
        assert element_keys(element) == ((Path("name"), "Y"),)

    def test_non_atom_constant_yields_no_key(self):
        element = formula({"name": parse_object("{1}")})
        assert element_keys(element) == ()


class TestMatchIndex:
    ELEMENTS = (
        parse_object("[name: ann, age: 1]"),
        parse_object("[name: bob, age: 2]"),
        parse_object("[name: ann, city: paris]"),
        parse_object("[name: {odd}, age: 3]"),  # non-atom key value: unbucketed
        parse_object("plain"),  # atoms index under the root path
    )

    def _index(self):
        index = MatchIndex(Path("r"), [Path("name"), Path(())])
        index.extend(self.ELEMENTS)
        return index

    def test_lookup_by_key(self):
        index = self._index()
        found = index.candidates(Path("name"), Atom("ann"))
        assert set(found) == {self.ELEMENTS[0], self.ELEMENTS[2]}

    def test_missing_key_is_definitively_empty(self):
        assert self._index().candidates(Path("name"), Atom("zoe")) == ()

    def test_root_path_buckets_atomic_elements(self):
        assert self._index().candidates(Path(()), Atom("plain")) == (self.ELEMENTS[4],)

    def test_unregistered_path_cannot_answer(self):
        assert self._index().candidates(Path("age"), Atom(1)) is None

    def test_non_atom_key_cannot_answer(self):
        assert self._index().candidates(Path("name"), parse_object("{1}")) is None

    def test_add_is_idempotent(self):
        index = self._index()
        index.add(self.ELEMENTS[0])
        assert len(index.candidates(Path("name"), Atom("ann"))) == 2

    def test_clear(self):
        index = self._index()
        index.clear()
        assert index.candidates(Path("name"), Atom("ann")) == ()
        assert len(index) == 0


class TestIndexStore:
    BODY = parse_rule(
        "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
    ).body

    def test_register_body_and_refresh(self):
        store = IndexStore()
        store.register_body(self.BODY)
        db = parse_object(
            "[family: {[name: abraham, children: {[name: isaac]}]}, doa: {abraham}]"
        )
        store.refresh(BOTTOM, db)
        family = store.candidates(Path("family"), Path("name"), Atom("abraham"))
        assert family == (parse_object("[name: abraham, children: {[name: isaac]}]"),)
        # The doa set indexes its atomic elements under the root path.
        assert store.candidates(Path("doa"), Path(()), Atom("abraham")) == (
            Atom("abraham"),
        )

    def test_incremental_refresh_adds_only_new_elements(self):
        store = IndexStore()
        store.register_body(self.BODY)
        before = parse_object("[doa: {abraham}, family: {}]")
        after = parse_object("[doa: {abraham, isaac}, family: {}]")
        store.refresh(BOTTOM, before)
        store.refresh(before, after)
        assert store.candidates(Path("doa"), Path(()), Atom("isaac")) == (Atom("isaac"),)

    def test_unknown_set_path_cannot_answer(self):
        store = IndexStore()
        store.register_body(self.BODY)
        assert store.candidates(Path("nowhere"), Path(()), Atom(1)) is None
