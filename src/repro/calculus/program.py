"""Programs: a facade bundling a database object, facts and rules.

The paper models the whole database as a single complex object and expresses
computation as the closure of that object under a set of rules (Example 4.5
expresses "descendants of Abraham" this way).  :class:`Program` packages that
workflow:

* facts (ground rules) seed the database;
* rules derive new structure;
* :meth:`Program.evaluate` computes the closure of the seed object under the
  rules with the divergence guards of :mod:`repro.calculus.fixpoint`;
* :meth:`Program.query` interprets a formula against the evaluated closure,
  compiled and cost-ordered through the plan pipeline of :mod:`repro.plan`;
* :meth:`Program.explain` pretty-prints the optimized plan with estimated
  and actual cardinalities (the EXPLAIN facility, also reachable through the
  CLI's ``run --explain`` / ``query --explain``).

Programs can be built from Python structures or parsed from the paper's
concrete syntax via :meth:`Program.from_source` (which delegates to
:mod:`repro.parser`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.core.lattice import union, union_all
from repro.core.objects import BOTTOM, ComplexObject
from repro.calculus.fixpoint import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_MAX_NODES,
    ClosureResult,
)
from repro.calculus.rules import Rule, RuleSet
from repro.calculus.terms import Formula, formula as to_formula

__all__ = ["Program"]


class Program:
    """A deductive program over complex objects.

    Parameters
    ----------
    rules:
        Rules and facts (facts are rules without a body).
    database:
        Optional seed object; defaults to ⊥ (the empty database), in which
        case facts alone provide the initial content.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        database: Optional[ComplexObject] = None,
    ):
        self._rules = RuleSet([r for r in rules if not r.is_fact])
        self._facts = tuple(r for r in rules if r.is_fact)
        self._database = database if database is not None else BOTTOM

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_source(
        cls, source: str, database: Optional[ComplexObject] = None
    ) -> "Program":
        """Parse a program written in the paper's concrete syntax.

        Each clause ends with a period; clauses without ``:-`` are facts.
        The import is deferred so the calculus package does not depend on the
        parser package at import time.
        """
        from repro.parser import parse_program

        return cls(parse_program(source), database=database)

    # -- accessors ----------------------------------------------------------------
    @property
    def rules(self) -> RuleSet:
        """The proper (non-fact) rules."""
        return self._rules

    @property
    def facts(self) -> Sequence[Rule]:
        """The facts (ground, bodiless rules)."""
        return self._facts

    @property
    def database(self) -> ComplexObject:
        """The seed database object."""
        return self._database

    def with_database(self, database: ComplexObject) -> "Program":
        """Return a copy of the program over a different seed object."""
        return Program(tuple(self._facts) + tuple(self._rules), database=database)

    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        """Return a copy with additional rules/facts appended."""
        combined: List[Rule] = list(self._facts) + list(self._rules) + list(rules)
        return Program(combined, database=self._database)

    # -- analysis -----------------------------------------------------------------
    def diagnostics(self):
        """Legacy per-rule diagnostics (see :mod:`repro.lint.legacy`).

        Kept for compatibility; :meth:`lint` is the full analyzer with
        stable codes, locations and plan-level findings.
        """
        from repro.lint.legacy import analyze_rules

        return analyze_rules(list(self._facts) + list(self._rules))

    def lint(self, query=None, *, statistics=None, use_database: bool = True):
        """Run the whole-program static analyzer (:mod:`repro.lint`).

        ``query`` (a formula or source text) enables the dead-rule analysis
        relative to that query's reads.  ``statistics`` overrides the cost
        model; by default the seeded database is profiled (disable with
        ``use_database=False``) so plan-level findings (RL3xx) see real
        cardinalities.  Returns a :class:`repro.lint.LintReport`.
        """
        from repro.lint import lint_rules
        from repro.plan import DatabaseStatistics

        database = None
        if use_database:
            seed = self.seed()
            if seed is not BOTTOM:
                database = seed
                if statistics is None:
                    statistics = DatabaseStatistics.collect(seed)
        return lint_rules(
            list(self._facts) + list(self._rules),
            query=query,
            statistics=statistics,
            database=database,
        )

    # -- evaluation ---------------------------------------------------------------
    def seed(self) -> ComplexObject:
        """The database joined with every fact's contribution."""
        contributions = [fact.apply(BOTTOM) for fact in self._facts]
        return union(self._database, union_all(contributions))

    def evaluate(
        self,
        *,
        engine: str = "naive",
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_depth=DEFAULT_MAX_DEPTH,
        deadline=None,
    ) -> ClosureResult:
        """Compute the closure of the seeded database under the rules.

        ``engine`` selects the evaluation strategy (see :mod:`repro.engine`):
        ``"naive"`` (the default) iterates the full rule set against the full
        database each round exactly as :func:`repro.calculus.fixpoint.close`
        does; ``"seminaive"`` uses the stratified, delta-driven, indexed
        engine.  Both strategies compute the same closure and return an
        :class:`repro.engine.EngineResult` (a :class:`ClosureResult` whose
        ``stats`` attribute records the work performed).  ``deadline`` — a
        :class:`repro.fault.Deadline` — bounds the evaluation: the engines
        check it at round boundaries and raise
        :class:`~repro.core.errors.QueryTimeout` with the partial closure
        attached.
        """
        # Deferred import: the calculus package must stay importable without
        # the engine subsystem (which itself builds on the calculus).
        from repro.engine import create_engine

        evaluator = create_engine(
            engine,
            self._rules,
            max_iterations=max_iterations,
            max_nodes=max_nodes,
            max_depth=max_depth,
            deadline=deadline,
        )
        return evaluator.run(self.seed())

    def query(self, query_formula, **guards) -> ComplexObject:
        """Deprecated shim: evaluate the program and query the closure.

        Delegates to the session facade (:mod:`repro.api`) so there is
        exactly one execution path; new code should hold a
        :class:`repro.api.Session`, register the rules once, and query the
        (cached) closure through it — which also makes repeated queries skip
        re-evaluation and re-planning, something this per-call shim cannot.
        The answer is the same substitution set, and therefore the same
        object, as the baseline
        :func:`repro.calculus.interpretation.interpret` against the closure.
        """
        import warnings

        warnings.warn(
            "Program.query() is deprecated; use repro.api.Session"
            " (session.register(rules); session.query(..., on_closure=True))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import Session

        engine = guards.pop("engine", "naive")
        return Session.over_program(self).query(
            to_formula(query_formula), on_closure=True, engine=engine, **guards
        )

    def explain(
        self,
        query_formula=None,
        *,
        analyze: bool = True,
        **guards,
    ) -> str:
        """Pretty-print the optimized evaluation plan (the EXPLAIN facility).

        Compiles every rule through :mod:`repro.plan`, optimizes against
        statistics of the seeded database, and renders the stratified plan
        with each leaf's estimated cardinality and access path.  With
        ``analyze=True`` (the default) the program is also evaluated
        (``guards`` are forwarded to :meth:`evaluate`, including ``engine=``)
        and each rule's plan is re-executed once against the closure so the
        rendering shows **actual** cardinalities and per-leaf wall time next
        to the estimates (EXPLAIN ANALYZE); the optional ``query_formula`` is
        planned and analyzed the same way.
        """
        from repro.plan import (
            DatabaseStatistics,
            compile_body,
            compile_program,
            match_plan,
            optimize_body,
            optimize_program,
        )
        from repro.plan.explain import render_body_plan, render_program_plan

        from repro.lint.shapes import infer_shapes

        seed = self.seed()
        statistics = DatabaseStatistics.collect(seed)
        # Closed-world inference over the seeded database: the rendering
        # shows each leaf's inferred element shape and marks the bodies the
        # analysis proved empty (the same proof the engines prune on).
        shapes = infer_shapes(tuple(self._rules), seed)
        plan = optimize_program(compile_program(self._rules), statistics, shapes)

        iterations = None
        rule_records = None
        closure_value = None
        if analyze:
            result = self.evaluate(**guards)
            closure_value = result.value
            iterations = result.iterations
            rule_records = {}
            for node in plan.rule_nodes():
                if node.body_plan is None:
                    continue
                record: dict = {"timed": True}
                match_plan(node.body_plan, closure_value, record=record)
                rule_records[node.rule] = record

        sections = [
            render_program_plan(
                plan, iterations=iterations, rule_records=rule_records
            )
        ]
        if query_formula is not None:
            parsed = to_formula(query_formula)
            target = closure_value if closure_value is not None else seed
            query_plan = optimize_body(
                compile_body(parsed),
                DatabaseStatistics.collect(target),
                infer_shapes(tuple(self._rules), target),
            )
            record = None
            if analyze:
                record = {"timed": True}
                match_plan(query_plan, target, record=record)
            sections.append(
                render_body_plan(
                    query_plan,
                    record=record,
                    header=f"query plan: {parsed.to_text()}",
                )
            )
        return "\n".join(sections)

    def __repr__(self) -> str:
        return (
            f"<Program {len(self._facts)} facts, {len(self._rules)} rules,"
            f" database={self._database.to_text()}>"
        )
