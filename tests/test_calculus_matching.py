"""Unit tests for the matching engine (repro.calculus.matching)."""

import pytest

from repro import parse_formula, parse_object
from repro.core.builder import obj
from repro.core.objects import BOTTOM, TOP
from repro.core.order import is_subobject
from repro.calculus.matching import count_matches, match, match_all
from repro.calculus.terms import formula, var


class TestLeafMatching:
    def test_variable_binds_to_target(self):
        [sigma] = match_all(var("X"), obj({"a": 1}))
        assert sigma["X"] == obj({"a": 1})

    def test_constant_matches_when_subobject(self):
        assert count_matches(formula(obj({"a": 1})), obj({"a": 1, "b": 2})) == 1
        assert count_matches(formula(obj(1)), obj(1)) == 1
        assert count_matches(formula(obj(1)), obj(2)) == 0

    def test_everything_matches_top(self):
        [sigma] = match_all(parse_formula("[a: X]"), TOP)
        assert sigma["X"] is TOP

    def test_type_errors(self):
        with pytest.raises(TypeError):
            list(match("not a formula", obj(1)))
        with pytest.raises(TypeError):
            list(match(var("X"), "not an object"))


class TestTupleMatching:
    def test_attribute_values_bound(self):
        [sigma] = match_all(parse_formula("[name: X, age: Y]"), parse_object("[name: peter, age: 25]"))
        assert sigma["X"] == obj("peter")
        assert sigma["Y"] == obj(25)

    def test_constant_attribute_must_match(self):
        target = parse_object("[name: peter, age: 25]")
        assert count_matches(parse_formula("[name: peter, age: X]"), target) == 1
        assert count_matches(parse_formula("[name: john, age: X]"), target) == 0

    def test_tuple_formula_does_not_match_sets_or_atoms(self):
        assert count_matches(parse_formula("[a: X]"), obj([1])) == 0
        assert count_matches(parse_formula("[a: X]"), obj(1)) == 0

    def test_missing_attribute_is_bottom_strict_vs_literal(self):
        target = parse_object("[b: 2]")
        # Strict semantics: X would have to be ⊥, so there is no match.
        assert count_matches(parse_formula("[a: X, b: Y]"), target) == 0
        # Literal semantics: X binds ⊥ and the match succeeds.
        [sigma] = match_all(parse_formula("[a: X, b: Y]"), target, allow_bottom=True)
        assert sigma["X"] is BOTTOM and sigma["Y"] == obj(2)


class TestSetMatching:
    def test_each_element_is_a_witness(self):
        target = parse_object("{[a: 1], [a: 2]}")
        bindings = {sigma["X"] for sigma in match_all(parse_formula("{[a: X]}"), target)}
        assert bindings == {obj(1), obj(2)}

    def test_two_variables_cross_product(self):
        target = parse_object("{1, 2}")
        assert count_matches(parse_formula("{X, Y}"), target) == 4

    def test_set_formula_does_not_match_non_sets(self):
        assert count_matches(parse_formula("{X}"), obj({"a": 1})) == 0
        assert count_matches(parse_formula("{X}"), obj(1)) == 0

    def test_empty_set_formula_matches_any_set(self):
        assert count_matches(parse_formula("{}"), obj([1, 2])) == 1
        assert count_matches(parse_formula("{}"), obj([])) == 1

    def test_variable_against_empty_set_only_in_literal_mode(self):
        assert count_matches(parse_formula("{X}"), obj([])) == 0
        [sigma] = match_all(parse_formula("{X}"), obj([]), allow_bottom=True)
        assert sigma["X"] is BOTTOM


class TestSharedVariables:
    def test_join_variable_intersects_witness_bounds(self):
        database = parse_object("[r1: {[a: 1, b: x]}, r2: {[c: x, d: 10]}]")
        query = parse_formula("[r1: {[a: A, b: X]}, r2: {[c: X, d: D]}]")
        [sigma] = match_all(query, database)
        assert sigma["X"] == obj("x")
        assert sigma["A"] == obj(1)
        assert sigma["D"] == obj(10)

    def test_join_fails_when_no_common_value(self):
        database = parse_object("[r1: {[a: 1, b: x]}, r2: {[c: y, d: 10]}]")
        query = parse_formula("[r1: {[a: A, b: X]}, r2: {[c: X, d: D]}]")
        assert count_matches(query, database) == 0
        # Literal semantics still matches by letting X vanish.
        assert count_matches(query, database, allow_bottom=True) == 1

    def test_intersection_pattern_binds_glb(self):
        database = parse_object("[r1: {[a: 1, b: 2]}, r2: {[a: 1, c: 3]}]")
        query = parse_formula("[r1: {X}, r2: {X}]")
        [sigma] = match_all(query, database)
        assert sigma["X"] == obj({"a": 1})


class TestSoundness:
    def test_every_match_instantiates_to_a_subobject(self, relational_db_object):
        queries = [
            "[r1: {[name: X]}]",
            "[r1: {[name: X, age: Y]}, r2: {[name: X, address: Z]}]",
            "[r1: X, r2: Y]",
            "[r1: {X}, r2: {X}]",
        ]
        for source in queries:
            query = parse_formula(source)
            for sigma in match_all(query, relational_db_object):
                assert is_subobject(sigma.apply(query), relational_db_object)

    def test_deduplication(self):
        target = parse_object("{[a: 1], [a: 1, b: 2]}")
        results = match_all(parse_formula("{[a: X]}"), target)
        assert len(results) == len(set(results))
