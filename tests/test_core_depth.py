"""Unit tests for the depth measure (Definition 3.2) and node counting."""

import math

import pytest

from repro.core.builder import obj
from repro.core.depth import depth, node_count
from repro.core.objects import BOTTOM, TOP


class TestDepth:
    def test_bottom_and_atoms_have_depth_one(self):
        assert depth(BOTTOM) == 1
        assert depth(obj(5)) == 1
        assert depth(obj("x")) == 1

    def test_empty_containers_have_depth_two(self):
        assert depth(obj({})) == 2
        assert depth(obj([])) == 2

    def test_tuple_depth_is_max_child_plus_one(self):
        assert depth(obj({"a": 1, "b": 2})) == 2
        assert depth(obj({"a": {"b": {"c": 1}}})) == 4

    def test_set_depth_is_max_element_plus_one(self):
        assert depth(obj([1, 2, 3])) == 2
        assert depth(obj([[1], [[2]]])) == 4

    def test_top_is_infinite(self):
        assert depth(TOP) == math.inf

    def test_mixed_nesting(self):
        value = obj({"r1": [{"name": "peter", "children": ["max"]}]})
        # atom=1, children set=2, tuple=3, r1 set=4, database tuple=5
        assert depth(value) == 5

    def test_rejects_non_objects(self):
        with pytest.raises(TypeError):
            depth("not an object")


class TestNodeCount:
    def test_leaves_count_one(self):
        assert node_count(obj(1)) == 1
        assert node_count(BOTTOM) == 1
        assert node_count(TOP) == 1

    def test_containers_count_children(self):
        assert node_count(obj({})) == 1
        assert node_count(obj({"a": 1, "b": 2})) == 3
        assert node_count(obj([1, 2, 3])) == 4
        assert node_count(obj({"a": [1, 2]})) == 4
