"""Unit tests for reduced objects (Definition 3.3, repro.core.reduction)."""

from repro.core.builder import obj
from repro.core.objects import BOTTOM, TOP, Atom, SetObject, TupleObject
from repro.core.reduction import is_reduced, reduce_object


class TestIsReduced:
    def test_atoms_and_specials_are_reduced(self):
        assert is_reduced(obj(1))
        assert is_reduced(BOTTOM)
        assert is_reduced(TOP)

    def test_constructor_built_objects_are_reduced(self):
        assert is_reduced(obj([{"a": 1}, {"b": 2}, 3]))
        assert is_reduced(obj({"r": [{"a": 1, "b": 2}]}))

    def test_raw_set_with_dominated_element_is_not_reduced(self):
        raw = SetObject.raw([obj({"a": 1}), obj({"a": 1, "b": 2})])
        assert not is_reduced(raw)

    def test_nested_unreduced_set_detected(self):
        inner = SetObject.raw([obj({"a": 1}), obj({"a": 1, "b": 2})])
        outer = TupleObject.raw({"r": inner})
        assert not is_reduced(outer)

    def test_incomparable_elements_are_reduced(self):
        assert is_reduced(SetObject.raw([obj({"a": 1}), obj({"b": 2})]))


class TestReduceObject:
    def test_drops_dominated_elements(self):
        raw = SetObject.raw([obj({"a": 1}), obj({"a": 1, "b": 2}), obj(3)])
        reduced = reduce_object(raw)
        assert reduced == SetObject.raw([obj({"a": 1, "b": 2}), obj(3)])
        assert is_reduced(reduced)

    def test_reduces_recursively(self):
        inner = SetObject.raw([obj({"a": 1}), obj({"a": 1, "b": 2})])
        outer = TupleObject.raw({"r": inner})
        reduced = reduce_object(outer)
        assert len(reduced.get("r")) == 1
        assert is_reduced(reduced)

    def test_subset_elements_dropped(self):
        raw = SetObject.raw([obj([1]), obj([1, 2])])
        assert reduce_object(raw) == SetObject.raw([obj([1, 2])])

    def test_already_reduced_unchanged(self):
        value = obj([{"a": 1}, {"b": 2}])
        assert reduce_object(value) == value

    def test_atoms_pass_through(self):
        assert reduce_object(obj(5)) == obj(5)

    def test_idempotent(self):
        raw = SetObject.raw(
            [obj({"a": 1}), obj({"a": 1, "b": 2}), obj({"a": 1, "b": 2, "c": 3})]
        )
        once = reduce_object(raw)
        assert reduce_object(once) == once

    def test_example_32_objects_become_equal_after_reduction(self):
        # Example 3.2: the two mutually-dominating objects collapse to the
        # same reduced object, restoring antisymmetry.
        first = SetObject.raw([obj({"a1": 3, "a2": 5}), obj({"a1": 3})])
        second = SetObject.raw([obj({"a1": 3, "a2": 5})])
        assert reduce_object(first) == reduce_object(second)
