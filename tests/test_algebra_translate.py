"""Unit tests for the rule-to-algebra translator (repro.algebra.translate)."""

import pytest

from repro import parse_object, parse_rule
from repro.algebra.translate import TranslationError, translate_rule


@pytest.fixture
def database():
    return parse_object(
        "[r1: {[a: 1, b: x], [a: 2, b: y], [a: 3, b: x]},"
        " r2: {[c: x, d: 10], [c: z, d: 20]}]"
    )


class TestTranslatableRules:
    """Every rule of the paper's Example 4.2 shape evaluates identically both ways."""

    RULES = [
        "[r: {[c: X]}] :- [r1: {[a: X, b: x]}]",
        "[r: {X}] :- [r1: {[a: X, b: x]}]",
        "[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
        "[r: {[a1: X, a2: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
        "{[a1: X, a2: Y]} :- [r1: {[a: X, b: Y]}]",
        "[r: {[a: X, b: Y, tag: copy]}] :- [r1: {[a: X, b: Y]}]",
        "[pairs: {[x: X, z: Z]}] :- [r1: {[a: X]}, r2: {[d: Z]}]",
    ]

    @pytest.mark.parametrize("source", RULES)
    def test_plan_agrees_with_calculus(self, source, database):
        rule = parse_rule(source)
        plan = translate_rule(rule)
        assert plan.apply(database) == rule.apply(database)

    def test_join_workload_agreement(self, join_workload_small):
        rule = parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]")
        plan = translate_rule(rule)
        assert plan.apply(join_workload_small.as_object) == rule.apply(
            join_workload_small.as_object
        )

    def test_repeated_variable_within_one_pattern(self):
        database = parse_object("[r: {[x: 1, y: 1], [x: 1, y: 2]}]")
        rule = parse_rule("[eq: {[v: X]}] :- [r: {[x: X, y: X]}]")
        plan = translate_rule(rule)
        assert plan.apply(database) == rule.apply(database) == parse_object("[eq: {[v: 1]}]")

    def test_plan_metadata(self, database):
        plan = translate_rule(
            parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]")
        )
        assert plan.head_relation == "r"
        assert set(plan.output_columns) == {"a", "d"}
        assert "join" in plan.plan.describe()


class TestUntranslatableRules:
    CASES = [
        # facts have no plan
        "[r: {[a: 1]}].",
        # nested body pattern
        "[r: {X}] :- [r1: {[a: [nested: X]]}]",
        # bare-variable body pattern (the intersection rule needs glbs, not joins)
        "[r: {X}] :- [r1: {X}, r2: {X}]",
        # body is not a tuple of relations
        "[r: {X}] :- {X}",
        # two patterns for one relation attribute
        "[r: {X}] :- [r1: {[a: X], [b: X]}]",
        # head with more than one relation
        "[r: {X}, s: {X}] :- [r1: {[a: X]}]",
        # nested head pattern
        "[r: {[wrapped: {X}]}] :- [r1: {[a: X]}]",
        # head relation not set-valued
        "[r: X] :- [r1: {[a: X]}]",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_rejected(self, source):
        with pytest.raises(TranslationError):
            translate_rule(parse_rule(source))

    def test_errors_name_the_offending_rule(self):
        rule = parse_rule("[r: {X}] :- [r1: {[a: [nested: X]]}]")
        with pytest.raises(TranslationError, match=r"cannot translate rule"):
            translate_rule(rule)

    def test_nested_pattern_error_names_the_attribute_path(self):
        with pytest.raises(TranslationError, match=r"r1\.a"):
            translate_rule(parse_rule("[r: {X}] :- [r1: {[a: [nested: X]]}]"))
        with pytest.raises(TranslationError, match=r"\[nested: X\]"):
            translate_rule(parse_rule("[r: {X}] :- [r1: {[a: [nested: X]]}]"))

    def test_self_join_error_names_the_relation(self):
        with pytest.raises(TranslationError, match=r"relation 'r1' is matched by 2"):
            translate_rule(parse_rule("[r: {X}] :- [r1: {[a: X], [b: X]}]"))
