"""Unit tests for path indexes (repro.store.index)."""

from repro import parse_object
from repro.core.builder import obj
from repro.store.index import PathIndex


class TestPathIndex:
    def test_add_and_lookup(self):
        index = PathIndex("name")
        index.add("peter", obj({"name": "peter", "age": 25}))
        index.add("john", obj({"name": "john", "age": 7}))
        assert index.lookup(obj("peter")) == {"peter"}
        assert index.lookup(obj("nobody")) == frozenset()
        assert index.covers("peter") and not index.covers("nobody")

    def test_values_inside_sets_are_indexed(self):
        index = PathIndex("family.name")
        index.add(
            "tree", parse_object("[family: {[name: abraham], [name: isaac]}]")
        )
        assert index.lookup(obj("abraham")) == {"tree"}
        assert index.lookup(obj("isaac")) == {"tree"}

    def test_missing_path_indexes_nothing(self):
        index = PathIndex("salary")
        index.add("x", obj({"name": "peter"}))
        assert len(index) == 0
        assert index.covers("x")

    def test_re_adding_replaces_old_entries(self):
        index = PathIndex("name")
        index.add("x", obj({"name": "old"}))
        index.add("x", obj({"name": "new"}))
        assert index.lookup(obj("old")) == frozenset()
        assert index.lookup(obj("new")) == {"x"}

    def test_remove(self):
        index = PathIndex("name")
        index.add("x", obj({"name": "peter"}))
        index.remove("x")
        assert index.lookup(obj("peter")) == frozenset()
        assert len(index) == 0
        index.remove("x")  # idempotent

    def test_rebuild(self):
        index = PathIndex("name")
        index.add("stale", obj({"name": "ghost"}))
        index.rebuild([("a", obj({"name": "peter"})), ("b", obj({"name": "john"}))])
        assert index.lookup(obj("ghost")) == frozenset()
        assert index.lookup(obj("peter")) == {"a"}
        assert set(index.keys()) == {obj("peter"), obj("john")}

    def test_shared_keys_collect_every_name(self):
        index = PathIndex("city")
        index.add("a", obj({"city": "austin"}))
        index.add("b", obj({"city": "austin"}))
        assert index.lookup(obj("austin")) == {"a", "b"}
