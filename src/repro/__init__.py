"""repro — A Calculus for Complex Objects (Bancilhon & Khoshafian, PODS 1986).

This package is a complete, from-scratch reproduction of the paper's data
model, lattice theory and object calculus, together with the database
substrates needed to evaluate it:

* :mod:`repro.core` — complex objects, the sub-object order and its lattice
  (Sections 2 and 3 of the paper);
* :mod:`repro.calculus` — well-formed formulae, rules and fixpoint semantics
  (Section 4);
* :mod:`repro.api` — the public query surface: :func:`repro.connect` opens a
  :class:`Session` (in-memory or WAL-backed) with prepared, parameterized,
  streaming queries and version-keyed plan caches — the one execution path
  the legacy entry points now delegate to;
* :mod:`repro.plan` — the query pipeline every evaluator compiles through:
  a logical plan IR, attribute-path statistics, a cost-based optimizer
  (join reordering, index pushdown) and the EXPLAIN facility behind
  ``Program.explain()``;
* :mod:`repro.engine` — the pluggable evaluation engine: rule stratification,
  semi-naive delta-driven closure and match indexes behind
  ``Program.evaluate(engine="seminaive")``, executing plan IR;
* :mod:`repro.parser` — the paper's concrete syntax;
* :mod:`repro.relational` — a first-normal-form relational engine and an NF²
  (nested relational) extension used as baselines;
* :mod:`repro.datalog` — a Horn-clause (Datalog) engine used as the recursive
  baseline;
* :mod:`repro.schema` — a typing/schema extension (the paper's future work);
* :mod:`repro.algebra` — an algebra of complex objects and a rule-to-algebra
  translator (the paper's future work);
* :mod:`repro.store` — a persistent object store with path indexes, updates
  and transactions;
* :mod:`repro.workloads` — synthetic data generators used by tests, examples
  and benchmarks.

Quickstart::

    import repro

    with repro.connect() as session:        # repro.connect("db.wal") persists
        session.put("r1", repro.parse_object(
            "{[name: peter, age: 25], [name: john, age: 7]}"))
        people = session.prepare("[r1: {[name: $who, age: A]}]")
        print(people.execute(who="peter").all())   # [r1: {[age: 25, name: peter]}]
        for match in people.execute(who="john"):   # streams lazily
            print(match)
"""

from repro.core import (
    BOTTOM,
    TOP,
    Atom,
    Bottom,
    ComplexObject,
    SetObject,
    Top,
    TupleObject,
    atom,
    clear_object_caches,
    depth,
    intern_stats,
    intersection,
    intersection_all,
    is_interned,
    is_reduced,
    is_subobject,
    obj,
    objects_equal,
    reduce_object,
    set_of,
    subobject,
    tup,
    union,
    union_all,
)
from repro.core.errors import (
    ComplexObjectError,
    ConflictError,
    DivergenceError,
    LockTimeout,
    ParameterError,
    ParseError,
    QueryTimeout,
    SchemaError,
    StoreError,
)
from repro.calculus import (
    ClosureResult,
    Constant,
    Formula,
    Parameter,
    Program,
    Rule,
    RuleSet,
    SetFormula,
    Substitution,
    TupleFormula,
    Variable,
    apply_rule,
    apply_rules,
    bind_parameters,
    close,
    closure_series,
    formula,
    match,
    param,
    var,
)
from repro.engine import (
    ENGINES,
    EngineResult,
    EngineStats,
    NaiveEngine,
    SemiNaiveEngine,
    create_engine,
)
from repro.parser import parse_formula, parse_object, parse_program, parse_rule, pretty

# The observability subsystem: tracing, metrics, EXPLAIN ANALYZE support.
# Exposed as a namespace (``repro.obs.enable_tracing()``,
# ``repro.obs.snapshot()``) rather than flattened into the top level.
from repro import obs

# The static analyzer: whole-program diagnostics with stable RLxxx codes
# (``repro.lint.lint_source(...)``, ``repro lint`` on the command line).
# A namespace, like ``repro.obs``.
from repro import lint
from repro.core.errors import LintError, UnboundVariableError

# The session facade is the public query surface; ``interpret`` is its
# deprecation shim for the pre-session free function (same semantics, one
# execution path).
from repro.api import (
    Cursor,
    PreparedQuery,
    ReproError,
    Session,
    connect,
    interpret,
)

__version__ = "1.2.0"

__all__ = [
    "Atom",
    "BOTTOM",
    "Bottom",
    "ClosureResult",
    "ComplexObject",
    "ComplexObjectError",
    "ConflictError",
    "Constant",
    "Cursor",
    "DivergenceError",
    "ENGINES",
    "EngineResult",
    "EngineStats",
    "Formula",
    "LintError",
    "LockTimeout",
    "NaiveEngine",
    "Parameter",
    "ParameterError",
    "ParseError",
    "PreparedQuery",
    "Program",
    "QueryTimeout",
    "ReproError",
    "Rule",
    "RuleSet",
    "SchemaError",
    "SemiNaiveEngine",
    "Session",
    "SetFormula",
    "SetObject",
    "StoreError",
    "Substitution",
    "TOP",
    "Top",
    "TupleFormula",
    "TupleObject",
    "UnboundVariableError",
    "Variable",
    "apply_rule",
    "apply_rules",
    "atom",
    "bind_parameters",
    "clear_object_caches",
    "close",
    "closure_series",
    "connect",
    "create_engine",
    "depth",
    "formula",
    "intern_stats",
    "interpret",
    "intersection",
    "intersection_all",
    "is_interned",
    "is_reduced",
    "is_subobject",
    "lint",
    "match",
    "obj",
    "objects_equal",
    "obs",
    "param",
    "parse_formula",
    "parse_object",
    "parse_program",
    "parse_rule",
    "pretty",
    "reduce_object",
    "set_of",
    "subobject",
    "tup",
    "union",
    "union_all",
    "var",
    "__version__",
]
