"""B5 — the join rule of Example 4.2(3): calculus vs relational vs translated plan.

Three implementations of the same equi-join are compared on the same data:

* the calculus rule evaluated by the matching engine (pattern matching over
  the single database object);
* the flat relational algebra (hash equi-join over rows);
* the algebra plan produced by :func:`repro.algebra.translate.translate_rule`
  (select–project–join over set objects).

The sweep varies the relation cardinality and the join-key domain (smaller
domains mean more join partners per tuple, i.e. larger outputs).
"""

from functools import lru_cache

import pytest

from repro import parse_rule
from repro.algebra.translate import translate_rule
from repro.relational.algebra import equijoin, project
from repro.workloads import make_join_workload

JOIN_RULE = "[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]"
SWEEP = [(50, 25), (100, 50), (200, 100), (100, 10)]


@lru_cache(maxsize=None)
def _workload(rows, domain):
    return make_join_workload(rows, join_domain=domain, rng=rows * 31 + domain)


@pytest.mark.benchmark(group="B5-join")
@pytest.mark.parametrize("rows,domain", SWEEP)
def test_relational_equijoin(benchmark, rows, domain):
    workload = _workload(rows, domain)
    result = benchmark(
        lambda: project(equijoin(workload.left, workload.right, [("b", "c")]), ["a", "d"])
    )
    assert len(result) > 0


@pytest.mark.benchmark(group="B5-join")
@pytest.mark.parametrize("rows,domain", SWEEP)
def test_calculus_join_rule(benchmark, rows, domain):
    workload = _workload(rows, domain)
    rule = parse_rule(JOIN_RULE)
    result = benchmark(rule.apply, workload.as_object)
    expected = project(equijoin(workload.left, workload.right, [("b", "c")]), ["a", "d"])
    assert len(result.get("r")) == len(expected)


@pytest.mark.benchmark(group="B5-join")
@pytest.mark.parametrize("rows,domain", SWEEP)
def test_translated_algebra_plan(benchmark, rows, domain):
    workload = _workload(rows, domain)
    plan = translate_rule(parse_rule(JOIN_RULE))
    result = benchmark(plan.apply, workload.as_object)
    expected = project(equijoin(workload.left, workload.right, [("b", "c")]), ["a", "d"])
    assert len(result.get("r")) == len(expected)
