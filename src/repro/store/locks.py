"""Locking primitives for the object store.

The store follows a single-writer / multi-reader discipline:

* every read of database state (lookups, scans, snapshots) runs under a
  shared **read lock**, so readers never observe a half-applied commit;
* every commit (single ``put``/``remove`` or a transaction batch) runs under
  the exclusive **write lock**, which also serialises the conflict check with
  the apply step — first-committer-wins is decided under the same lock that
  publishes the decision.

:class:`RWLock` is writer-preferring: once a writer is waiting, new readers
queue behind it, so a steady stream of readers cannot starve commits.  The
lock is intentionally non-reentrant; the database methods are structured so a
locked region only ever calls unlocked internals.

Graceful degradation: both acquire methods take ``timeout=`` (seconds) and
raise a typed :class:`~repro.core.errors.LockTimeout` instead of blocking
past the deadline — the backpressure primitive a server needs where "hang
forever" is not an option.  A constructor-level ``default_timeout`` applies
the same bound to every acquisition made through the convenience context
managers (how :class:`~repro.store.database.ObjectDatabase` arms it for all
of its internal locking).  A writer that times out while queued wakes the
readers parked behind its preference claim, so an abandoned wait never
strands the queue.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from repro.core.errors import LockTimeout
from repro.fault import injection as _fault
from repro.obs.metrics import REGISTRY as _METRICS

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring readers/writer lock with optional timeouts."""

    def __init__(self, *, default_timeout: Optional[float] = None):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.default_timeout = default_timeout

    def _timed_out(self, side: str, timeout: float) -> LockTimeout:
        _METRICS.counter("store.lock.timeouts").inc()
        return LockTimeout(
            f"{side} lock not acquired within {timeout:g} s"
            " (a writer holds or awaits the lock)"
        )

    # -- shared (read) side ------------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> None:
        """Acquire the shared side; ``timeout`` (seconds) bounds the wait.

        ``timeout=None`` falls back to the lock's ``default_timeout`` (which
        itself defaults to waiting forever).  On expiry the acquisition
        raises :class:`LockTimeout` and the lock state is untouched.
        """
        if timeout is None:
            timeout = self.default_timeout
        with self._condition:
            if not (self._writer_active or self._writers_waiting):
                # Fast path: uncontended — no clock reads, no metric work.
                self._readers += 1
            else:
                wait_start = time.perf_counter_ns()
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._writer_active or self._writers_waiting:
                    if deadline is None:
                        self._condition.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise self._timed_out("read", timeout)
                        self._condition.wait(remaining)
                self._readers += 1
                _METRICS.counter("store.lock.read_contended").inc()
                _METRICS.histogram("store.lock.read_wait_ns").observe(
                    time.perf_counter_ns() - wait_start
                )
        if _fault.ACTIVE is not None:
            # Fired while the read lock is held, so a delay spec makes the
            # holder dawdle deterministically (forcing writer contention).
            # A raising mode must not leak the freshly-taken lock.
            try:
                _fault.fire("store.lock.read_held")
            except BaseException:
                self.release_read()
                raise

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            # Only a writer can be blocked on readers draining, so waking
            # the condition is useful exactly when one is waiting (or, for
            # belt-and-braces, somehow already active); a pure read storm
            # never pays the notify.
            if self._readers == 0 and (self._writers_waiting or self._writer_active):
                self._condition.notify_all()

    @contextmanager
    def read_locked(self, timeout: Optional[float] = None):
        self.acquire_read(timeout)
        try:
            yield self
        finally:
            self.release_read()

    # -- exclusive (write) side --------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> None:
        """Acquire the exclusive side; ``timeout`` (seconds) bounds the wait."""
        if timeout is None:
            timeout = self.default_timeout
        with self._condition:
            if not (self._writer_active or self._readers):
                # Fast path: uncontended — no clock reads, no metric work.
                self._writer_active = True
            else:
                wait_start = time.perf_counter_ns()
                deadline = None if timeout is None else time.monotonic() + timeout
                self._writers_waiting += 1
                try:
                    while self._writer_active or self._readers:
                        if deadline is None:
                            self._condition.wait()
                        else:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                raise self._timed_out("write", timeout)
                            self._condition.wait(remaining)
                    self._writer_active = True
                finally:
                    self._writers_waiting -= 1
                    if not self._writer_active and self._writers_waiting == 0:
                        # A timed-out writer abandons its preference claim;
                        # readers queued behind it must re-check or they wait
                        # for a release that will never come.
                        self._condition.notify_all()
                _METRICS.counter("store.lock.write_contended").inc()
                _METRICS.histogram("store.lock.write_wait_ns").observe(
                    time.perf_counter_ns() - wait_start
                )
        if _fault.ACTIVE is not None:
            # Fired while the write lock is held: a delay spec turns this
            # writer into a deterministic lock hog (LockTimeout tests).
            # A raising mode must not leak the freshly-taken lock.
            try:
                _fault.fire("store.lock.write_held")
            except BaseException:
                self.release_write()
                raise

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write_locked(self, timeout: Optional[float] = None):
        self.acquire_write(timeout)
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RWLock readers={self._readers} writer={self._writer_active}"
            f" waiting={self._writers_waiting}>"
        )
