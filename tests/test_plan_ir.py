"""Unit tests for the plan IR, the compiler, statistics and the optimizer."""

import pytest

from repro import parse_formula, parse_object, parse_rule
from repro.store.paths import Path
from repro.plan import (
    BindLeaf,
    BodyPlan,
    CheckLeaf,
    ConstLeaf,
    DatabaseStatistics,
    ScanLeaf,
    compile_body,
    compile_program,
    compile_rule,
    estimate_leaf,
    leaf_key,
    optimize_body,
)


class TestCompileBody:
    def test_join_body_produces_one_scan_leaf_per_set_element(self):
        plan = compile_body(parse_formula("[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]"))
        assert [type(leaf) for leaf in plan.leaves] == [ScanLeaf, ScanLeaf]
        assert sorted(str(leaf.path) for leaf in plan.leaves) == ["r1", "r2"]

    def test_multiple_elements_of_one_set_get_distinct_indexes(self):
        plan = compile_body(parse_formula("[r: {[a: X], [b: Y]}]"))
        assert sorted(leaf.element_index for leaf in plan.leaves) == [0, 1]
        assert len({leaf_key(leaf) for leaf in plan.leaves}) == 2

    def test_static_and_dynamic_keys(self):
        plan = compile_body(parse_formula("[r: {[name: abraham, child: X]}]"))
        (leaf,) = plan.leaves
        assert [(str(p), a.to_text()) for p, a in leaf.static_keys] == [
            ("name", "abraham")
        ]
        assert [(str(p), n) for p, n in leaf.dynamic_keys] == [("child", "X")]

    def test_spine_variable_and_constant_leaves(self):
        plan = compile_body(parse_formula("[a: X, b: 5]"))
        kinds = {type(leaf): str(leaf.path) for leaf in plan.leaves}
        assert kinds == {BindLeaf: "a", ConstLeaf: "b"}

    def test_empty_tuple_and_set_formulae_become_checks(self):
        plan = compile_body(parse_formula("[a: [], b: {}]"))
        shapes = sorted((str(leaf.path), leaf.shape) for leaf in plan.leaves)
        assert shapes == [("a", "tuple"), ("b", "set")]
        assert all(isinstance(leaf, CheckLeaf) for leaf in plan.leaves)

    def test_nested_structure_below_elements_stays_in_the_element(self):
        # The witness-internal set formula contributes no extra leaf.
        plan = compile_body(
            parse_formula("[family: {[name: Y, children: {[name: X]}]}]")
        )
        assert len(plan.leaves) == 1
        assert plan.leaves[0].variables == frozenset({"X", "Y"})

    def test_compilation_is_cached_on_the_formula(self):
        body = parse_formula("[r1: {[a: X]}]")
        assert compile_body(body) is compile_body(body)

    def test_compile_rule_and_program(self):
        fact = parse_rule("[doa: {abraham}].")
        rule = parse_rule(
            "[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
        )
        assert compile_rule(fact).body_plan is None
        node = compile_rule(rule)
        assert node.body_plan is not None and len(node.body_plan.leaves) == 2
        program = compile_program([rule])
        assert len(program.strata) == 1
        assert program.strata[0].recursive
        assert program.rule_nodes()[0].rule == rule


class TestStatistics:
    DB = "[r1: {[a: 1, b: x], [a: 2, b: x], [a: 3, b: y]}, deep: [r2: {[c: 9]}]]"

    def test_cardinalities_and_distincts(self):
        stats = DatabaseStatistics.collect(parse_object(self.DB))
        assert stats.set_cardinalities[Path("r1")] == 3
        assert stats.set_cardinalities[Path("deep.r2")] == 1
        assert stats.distinct_atoms[(Path("r1"), Path("a"))] == 3
        assert stats.distinct_atoms[(Path("r1"), Path("b"))] == 2

    def test_equality_estimate_uses_distinct_counts(self):
        stats = DatabaseStatistics.collect(parse_object(self.DB))
        assert stats.equality_estimate(Path("r1"), Path("b")) == pytest.approx(1.5)
        # Unknown paths fall back to defaults rather than claiming zero cost.
        assert stats.cardinality(Path("missing")) > 0
        assert stats.distinct(Path("missing"), Path("x")) > 0

    def test_as_dict_is_json_friendly(self):
        snapshot = DatabaseStatistics.collect(parse_object(self.DB)).as_dict()
        assert snapshot["cardinalities"]["r1"] == 3.0
        assert snapshot["distinct"]["r1::b"] == 2.0


class TestOptimizer:
    def test_selective_static_key_leaf_runs_first(self):
        # z_sel sorts last in the canonical attribute order but is by far the
        # most selective atom: the optimizer must move it first.
        db = parse_object(
            "[a_r: {" + ", ".join(f"[x: {i}, y: {i % 5}]" for i in range(20)) + "},"
            " z_sel: {" + ", ".join(f"[y: {i % 5}, tag: t{i}]" for i in range(20)) + "}]"
        )
        body = parse_formula("[a_r: {[x: X, y: Y]}, z_sel: {[y: Y, tag: t3]}]")
        source = compile_body(body)
        assert str(source.leaves[0].path) == "a_r"  # source order is alphabetical
        optimized = optimize_body(source, DatabaseStatistics.collect(db))
        assert optimized.optimized
        assert str(optimized.leaves[0].path) == "z_sel"
        assert "index tag=" in optimized.estimates[0].access
        # The second leaf is reached with Y bound: a dynamic index probe.
        assert "index y=$Y" in optimized.estimates[1].access

    def test_free_leaves_run_before_scans_and_bind_variables(self):
        db = parse_object("[k: v, r: {[a: 1]}]")
        plan = optimize_body(
            compile_body(parse_formula("[r: {[a: X]}, k: K]")),
            DatabaseStatistics.collect(db),
        )
        assert isinstance(plan.leaves[0], BindLeaf)

    def test_cross_products_run_last(self):
        db = parse_object(
            "[r1: {[a: 1], [a: 2]}, r2: {[a: 1]}, lonely: {[z: 9], [z: 8], [z: 7]}]"
        )
        body = parse_formula("[r1: {[a: X]}, r2: {[a: X]}, lonely: {[z: Z]}]")
        plan = optimize_body(compile_body(body), DatabaseStatistics.collect(db))
        assert str(plan.leaves[-1].path) == "lonely"

    def test_without_statistics_static_keys_still_go_first(self):
        body = parse_formula("[big: {[v: V]}, small: {[k: pin, v: V]}]")
        plan = optimize_body(compile_body(body))
        assert str(plan.leaves[0].path) == "small"

    def test_estimates_parallel_the_leaves(self):
        plan = optimize_body(compile_body(parse_formula("[r: {[a: X]}, k: K]")))
        assert len(plan.estimates) == len(plan.leaves)
        estimate = estimate_leaf(plan.leaves[-1], set(), None)
        assert estimate.rows >= 1.0


class TestDescribe:
    def test_body_plan_describe_mentions_join(self):
        plan = compile_body(parse_formula("[r1: {[a: X]}, r2: {[b: X]}]"))
        assert "join" in plan.describe()
        assert isinstance(plan, BodyPlan)

    def test_leaf_descriptions_name_paths_and_patterns(self):
        plan = compile_body(parse_formula("[r1: {[a: X]}, k: K, c: 5, e: {}]"))
        described = " / ".join(leaf.describe() for leaf in plan.leaves)
        assert "scan r1 ~ [a: X]" in described
        assert "bind K := k" in described
        assert "select c >= 5" in described
        assert "check e is set" in described
