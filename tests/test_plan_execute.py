"""The physical executor agrees with the baseline matcher on every fragment.

``match_plan`` is the one matching loop behind every evaluation path, so its
contract is behavioural identity with :func:`repro.calculus.matching.match_all`
— same substitution sets under the strict and the literal semantics, same
delta-restricted subsets, same answers through interpretation and rule
application.  These tests pin the crafted edge cases (⊤ on the spine, shape
mismatches, vanish alternatives, repeated variables); the property suite in
``test_plan_properties.py`` covers randomized programs.
"""

import pytest

from repro import parse_formula, parse_object, parse_rule
from repro.calculus.interpretation import interpret
from repro.calculus.matching import match_all
from repro.calculus.rules import Rule
from repro.core.objects import BOTTOM
from repro.engine.delta import decompose
from repro.engine.indexes import IndexStore
from repro.engine.stats import EngineStats
from repro.plan import (
    DatabaseStatistics,
    apply_rule_plan,
    compile_body,
    compile_rule,
    interpret_plan,
    match_plan,
    optimize_body,
    optimize_rule,
)

CASES = [
    # (formula, database) pairs covering the matcher's edge cases.
    ("[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
     "[r1: {[a: 1, b: x], [a: 2, b: y]}, r2: {[c: x, d: 10], [c: z, d: 20]}]"),
    ("[r1: {[name: X]}]", "[r1: {[name: peter, age: 25], [name: john]}]"),
    ("[r1: {X}]", "[r1: {}]"),                      # vanish: bare variable
    ("[a: {bottom}]", "[a: {}]"),                   # vanish: bottom constant
    ("[a: {bottom}]", "[a: {1}]"),
    ("[r1: {X}]", "[r2: {1}]"),
    ("X", "[a: {1}]"),                              # bare-variable body
    ("[a: X]", "5"),                                # tuple formula vs atom
    ("[a: []]", "[a: [x: 1]]"),                     # empty tuple check
    ("[a: {}]", "[a: [x: 1]]"),                     # set check vs tuple
    ("[a: top]", "[a: top]"),
    ("[a: X]", "top"),                              # ⊤ at the root
    ("[a: [b: X]]", "[a: top]"),                    # ⊤ mid-spine
    ("[r: {[x: X, y: X]}]", "[r: {[x: 1, y: 1], [x: 1, y: 2]}]"),
    ("[family: {[name: Y, children: {[name: X]}]}, doa: {Y}]",
     "[family: {[name: a, children: {[name: b], [name: c]}],"
     " [name: b, children: {[name: d]}]}, doa: {a}]"),
    ("[a: {[b: {Y}, c: X]}]", "[a: {[b: {1, 2}, c: q], [b: {3}, c: r]}]"),
]


@pytest.mark.parametrize("formula_text,object_text", CASES)
@pytest.mark.parametrize("allow_bottom", [False, True])
def test_match_plan_agrees_with_match_all(formula_text, object_text, allow_bottom):
    formula = parse_formula(formula_text)
    database = parse_object(object_text)
    plan = optimize_body(compile_body(formula), DatabaseStatistics.collect(database))
    expected = set(match_all(formula, database, allow_bottom=allow_bottom))
    actual = set(match_plan(plan, database, allow_bottom=allow_bottom))
    assert actual == expected


@pytest.mark.parametrize("formula_text,object_text", CASES)
def test_interpret_plan_agrees_with_interpret(formula_text, object_text):
    formula = parse_formula(formula_text)
    database = parse_object(object_text)
    plan = optimize_body(compile_body(formula), DatabaseStatistics.collect(database))
    assert interpret_plan(plan, database) == interpret(formula, database)


class TestDeltaRestriction:
    BODY = "[family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
    DB = (
        "[family: {[name: a, children: {[name: b], [name: c]}],"
        " [name: b, children: {[name: d]}]}, doa: {a, b}]"
    )

    def test_union_over_positions_with_full_deltas_recovers_full_match(self):
        body = parse_formula(self.BODY)
        database = parse_object(self.DB)
        plan = optimize_body(compile_body(body))
        full = set(match_plan(plan, database))
        from repro.engine.delta import navigate

        recovered = set()
        for position in decompose(body).positions:
            elements = navigate(database, position.path).elements
            recovered |= set(
                match_plan(
                    plan, database, position=position, delta_elements=elements
                )
            )
        assert recovered == full

    def test_empty_delta_yields_no_new_witness_matches(self):
        body = parse_formula(self.BODY)
        database = parse_object(self.DB)
        plan = optimize_body(compile_body(body))
        position = decompose(body).positions[0]
        restricted = match_plan(
            plan, database, position=position, delta_elements=()
        )
        # With no fresh witnesses the only alternatives are vanish bindings,
        # which the strict semantics filters out.
        assert restricted == []


class TestIndexes:
    def test_index_hits_counted_and_answers_identical(self):
        body = parse_formula(
            "[family: {[name: Y, children: {[name: X]}]}, doa: {Y}]"
        )
        database = parse_object(
            "[family: {[name: a, children: {[name: b]}],"
            " [name: b, children: {[name: c]}]}, doa: {a}]"
        )
        stats = EngineStats()
        indexes = IndexStore(stats)
        indexes.register_body(body)
        indexes.refresh(BOTTOM, database)
        plan = optimize_body(compile_body(body), DatabaseStatistics.collect(database))
        with_index = set(match_plan(plan, database, indexes=indexes, stats=stats))
        without = set(match_plan(plan, database))
        assert with_index == without
        assert stats.index_hits > 0

    def test_allow_bottom_disables_narrowing(self):
        body = parse_formula("[r: {[k: pin, v: X]}]")
        database = parse_object("[r: {[k: pin, v: 1], [k: other, v: 2]}]")
        stats = EngineStats()
        indexes = IndexStore(stats)
        indexes.register_body(body)
        indexes.refresh(BOTTOM, database)
        plan = optimize_body(compile_body(body))
        result = match_plan(
            plan, database, indexes=indexes, stats=stats, allow_bottom=True
        )
        assert stats.index_hits == 0
        assert set(result) == set(match_all(body, database, allow_bottom=True))


class TestRuleApplication:
    def test_apply_rule_plan_matches_rule_apply(self):
        rule = parse_rule(
            "[j: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]"
        )
        database = parse_object(
            "[r1: {[a: 1, b: x], [a: 3, b: x]}, r2: {[c: x, d: 10]}]"
        )
        node = optimize_rule(compile_rule(rule), DatabaseStatistics.collect(database))
        assert apply_rule_plan(node, database) == rule.apply(database)

    def test_fact_nodes_emit_their_head(self):
        fact = Rule(parse_formula("[doa: {abraham}]"))
        node = compile_rule(fact)
        assert apply_rule_plan(node, BOTTOM) == fact.apply(BOTTOM)


class TestActualRecording:
    def test_record_collects_per_leaf_rows_and_total(self):
        body = parse_formula("[r1: {[a: X]}, r2: {[b: X]}]")
        database = parse_object("[r1: {[a: 1], [a: 2]}, r2: {[b: 1]}]")
        plan = optimize_body(compile_body(body), DatabaseStatistics.collect(database))
        record = {}
        results = match_plan(plan, database, record=record)
        assert record["rows"] == len(results) == 1
        assert len(record["by_leaf"]) == 2
        assert all(rows >= 1 for rows in record["by_leaf"].values())
