"""Metrics: process-wide counters, gauges and log-scale histograms.

One :class:`MetricsRegistry` (:data:`REGISTRY`) absorbs the instrumentation
that used to be scattered across ad-hoc per-object records —
:class:`repro.engine.stats.EngineStats`,
:attr:`repro.store.database.ObjectDatabase.access_stats`, the session plan
cache's hit/miss counters — plus the telemetry none of them carried: WAL
bytes/fsyncs, commit/conflict counts, lock wait time and query latency
distributions.  Everything is named with dotted prefixes (``engine.*``,
``session.*``, ``store.*``) and exported as one JSON document by
:func:`repro.obs.snapshot` / the CLI's ``repro stats``.

Design constraints:

* **zero dependencies** — stdlib only;
* **cheap on the hot path** — instruments increment under one small lock;
  instrumented sites fire per query / per commit / per engine round, never
  per tuple, so the cost disappears into the operation being measured;
* **monotonic** — counters only ever grow (the property the session cache
  fix in this series restores), so deltas between snapshots are meaningful.

Histograms use **fixed log-scale buckets**: powers of two of nanoseconds
from 1µs up to ~69s (27 buckets plus overflow).  Log-scale buckets keep the
relative quantile error bounded (each bucket is 2× its neighbour) with a
fixed, tiny footprint — the classic latency-histogram trade.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_NS",
    "ROWS_PER_BATCH_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

#: Default histogram bucket upper bounds: 2^10..2^36 ns (≈1µs .. ≈69s).
LATENCY_BUCKETS_NS: Tuple[int, ...] = tuple(2 ** exponent for exponent in range(10, 37))

#: Bucket bounds for row-count histograms (``exec.rows_per_batch``): powers
#: of two from 1 row up to ~1M rows per operator batch.  Same log-scale
#: rationale as the latency buckets, different unit.
ROWS_PER_BATCH_BUCKETS: Tuple[int, ...] = tuple(2 ** exponent for exponent in range(0, 21))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be ≥ 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A point-in-time value (sizes, versions, object counts)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """Fixed-bucket log-scale histogram of observations (latencies in ns).

    ``buckets`` are the inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Quantiles are answered from the
    cumulative bucket counts, reporting the upper bound of the bucket the
    quantile falls in — an over-estimate by at most the bucket's width (2×
    under the default log-scale bounds).
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Optional[Tuple[int, ...]] = None):
        self.name = name
        self.buckets: Tuple[int, ...] = tuple(buckets) if buckets else LATENCY_BUCKETS_NS
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {name}: bucket bounds must be sorted")
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        index = bisect_right(self.buckets, value) if value > 0 else 0
        # bisect_right puts a value equal to a bound into the next bucket;
        # bounds are inclusive upper bounds, so step back onto the boundary.
        if index and value <= self.buckets[index - 1]:
            index -= 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self):
        return self._sum

    def quantile(self, q: float):
        """The upper bound of the bucket holding the ``q``-quantile (or ``None``)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._count:
                return None
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return self._max
            return self._max

    def as_dict(self) -> dict:
        """Count, sum, min/max, p50/p95/p99 and the non-empty buckets."""
        with self._lock:
            counts = list(self._counts)
            total, observed_sum = self._count, self._sum
            low, high = self._min, self._max
        nonzero = {}
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            bound = self.buckets[index] if index < len(self.buckets) else "+inf"
            nonzero[str(bound)] = bucket_count
        return {
            "count": total,
            "sum": observed_sum,
            "min": low,
            "max": high,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": nonzero,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} count={self._count}>"


#: Metric names pre-declared on every registry, so a snapshot always covers
#: the engine, plan-cache, index and WAL sections even before first use.
DECLARED_COUNTERS: Tuple[str, ...] = (
    # engine — absorbed from EngineStats after every engine run
    "engine.runs",
    "engine.iterations",
    "engine.strata",
    "engine.recursive_strata",
    "engine.delta_matches",
    "engine.full_matches",
    "engine.match_attempts",
    "engine.substitutions",
    "engine.subobjects_derived",
    "engine.index_hits",
    "engine.index_misses",
    "engine.full_match_fallbacks",
    # session — the plan/closure caches and query traffic
    "session.queries",
    "session.prepared_queries",
    "session.slow_queries",
    "session.plan_cache.hits",
    "session.plan_cache.misses",
    "session.plan_cache.evictions",
    "session.plan_cache.invalidations",
    "session.closure_cache.hits",
    "session.closure_cache.misses",
    "session.closure_cache.evictions",
    "session.closure_cache.invalidations",
    # store — commits, conflicts, and the access-path counters that mirror
    # ObjectDatabase.access_stats
    "store.commits",
    "store.conflicts",
    "store.index.find_index_prefilters",
    "store.index.find_path_lookups",
    "store.index.find_scans",
    "store.index.query_root_pushdowns",
    "store.index.query_index_shortcircuits",
    "store.index.query_scans",
    # WAL
    "store.wal.appends",
    "store.wal.bytes",
    "store.wal.fsyncs",
    "store.wal.recoveries",
    "store.wal.records_replayed",
    "store.wal.torn_bytes_dropped",
    # locks — contended acquisitions (wait time in the histograms below)
    "store.lock.read_contended",
    "store.lock.write_contended",
    "store.lock.timeouts",
    # graceful degradation — conflict retries, quarantined corruption,
    # self-healed appends, query deadlines (see repro.fault)
    "store.retries",
    "store.retry_exhausted",
    "store.wal.healed_appends",
    "store.wal.quarantined_records",
    "store.wal.quarantined_bytes",
    "session.query_timeouts",
    # fault injection — faults fired by repro.fault.injection
    "fault.injected",
    "fault.delays",
    # vectorized executor — operator batches and compiled-predicate traffic
    "exec.batches",
    "exec.compiled_leaf_hits",
)

DECLARED_HISTOGRAMS: Tuple[str, ...] = (
    "session.query_ns",
    "session.closure_ns",
    "store.commit_ns",
    "store.wal.append_ns",
    "store.lock.read_wait_ns",
    "store.lock.write_wait_ns",
    "engine.round_ns",
    "exec.rows_per_batch",
)

#: Non-default bucket bounds for declared histograms (the rest use
#: :data:`LATENCY_BUCKETS_NS`).
_DECLARED_BUCKETS: Dict[str, Tuple[int, ...]] = {
    "exec.rows_per_batch": ROWS_PER_BATCH_BUCKETS,
}


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self, *, declare: bool = True):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        if declare:
            for name in DECLARED_COUNTERS:
                self.counter(name)
            for name in DECLARED_HISTOGRAMS:
                self.histogram(name, _DECLARED_BUCKETS.get(name))

    # -- accessors ----------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Tuple[int, ...]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, buckets)
                )
        return instrument

    # -- bulk absorption ----------------------------------------------------------------
    def record_engine_run(self, stats) -> None:
        """Fold one :class:`~repro.engine.stats.EngineStats` into the registry."""
        self.counter("engine.runs").inc()
        for key, value in stats.as_dict().items():
            if value:
                self.counter(f"engine.{key}").inc(value)

    # -- export -------------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every metric as one plain-JSON mapping (stable key order)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].as_dict() for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        """Zero everything (tests and benchmarks; production never resets)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        for name in DECLARED_COUNTERS:
            self.counter(name)
        for name in DECLARED_HISTOGRAMS:
            self.histogram(name, _DECLARED_BUCKETS.get(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry {len(self._counters)} counters,"
            f" {len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )


#: The process-wide registry every instrumented layer reports into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """``REGISTRY.counter`` — the module-level convenience accessor."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """``REGISTRY.gauge`` — the module-level convenience accessor."""
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Tuple[int, ...]] = None) -> Histogram:
    """``REGISTRY.histogram`` — the module-level convenience accessor."""
    return REGISTRY.histogram(name, buckets)
