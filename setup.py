"""Setuptools entry point.

The build metadata lives here (rather than only in ``pyproject.toml``) so the
package installs with ``pip install -e .`` even on environments whose
setuptools predates full PEP 621 support and that have no network access for
build isolation.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "A Calculus for Complex Objects (Bancilhon & Khoshafian, PODS 1986) — "
        "full reproduction: complex-object lattice, object calculus, relational/"
        "Datalog baselines, schema and algebra extensions, object store."
    ),
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={"test": ["pytest", "hypothesis", "pytest-benchmark", "numpy"]},
)
