#!/usr/bin/env python3
"""Robustness quickstart: fault injection → crash recovery → retries → deadlines.

:mod:`repro.fault` is the robustness toolkit the store and session layers are
hardened with.  Everything here is off by default and nearly free when off
(the disabled-injection contract is pinned by
``benchmarks/run_fault_benchmarks.py``).  This walkthrough covers:

1. deterministic fault injection — ``inject("store.wal.fsync:fail:times=1")``
   makes the next fsync fail, exactly once, reproducibly; the store
   self-heals the aborted append;
2. simulated crashes and recovery — a ``torn_crash`` spec kills the "process"
   mid-append; reopening the WAL truncates the torn tail back to the last
   committed record (the crash-consistency sweep does this at *every*
   boundary: ``python -m repro.fault.sweep --smoke``);
3. quarantine — in-place corruption is moved to a ``.quarantine`` sidecar on
   open, keeping the longest intact prefix instead of refusing to start;
4. bounded conflict retry — ``Session.transact`` re-runs a read-modify-write
   under a jittered-backoff ``RetryPolicy`` when another writer wins;
5. lock timeouts — ``RWLock.acquire_*(timeout=...)`` raises ``LockTimeout``
   instead of hanging;
6. query deadlines — ``execute(..., timeout_ms=...)`` raises ``QueryTimeout``
   with the partial closure and a plan rendering attached.

Run with::

    python examples/fault_injection_quickstart.py
"""

import os
import sys
import tempfile
import threading

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import repro
from repro import obj
from repro.core.errors import InjectedFault, LockTimeout, QueryTimeout
from repro.fault import SimulatedCrash, inject
from repro.store.locks import RWLock
from repro.store.retry import RetryPolicy
from repro.store.storage import FileStorage


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    scratch = tempfile.mkdtemp(prefix="repro-fault-demo-")
    path = os.path.join(scratch, "demo.wal")

    banner("1. Injected fsync failure: the append self-heals")
    storage = FileStorage(path)
    storage.write("committed", obj({"v": 1}))
    with inject("store.wal.fsync:fail:times=1"):
        try:
            storage.write("lost", obj({"v": 2}))
        except InjectedFault as error:
            print(f"append failed as injected: {error}")
    print(f"log untouched, store still usable: names = {storage.names()}")
    storage.write("after", obj({"v": 3}))
    print(f"next commit lands cleanly:        names = {storage.names()}")
    storage.close()

    banner("2. Simulated crash mid-append: recovery truncates the torn tail")
    storage = FileStorage(path)
    size_before = os.path.getsize(path)
    with inject("store.wal.append:torn_crash", seed=7):
        try:
            storage.write("in_flight", obj({"v": 4}))
        except SimulatedCrash:
            print("the process 'died' with a partial record on disk")
    storage.close()
    print(f"torn bytes on disk: {os.path.getsize(path) - size_before}")
    recovered = FileStorage(path)
    print(f"recovery truncated back to the commit boundary: {recovered.names()}")
    recovered.close()

    banner("3. In-place corruption: quarantined on open, prefix preserved")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines[1] = lines[1].replace('"commit"', '"COMMIT"')  # flip bytes in record 2
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    recovered = FileStorage(path)  # on_corruption="quarantine" is the default
    print(f"intact prefix:        {recovered.names()}")
    print(
        f"quarantined: {recovered.quarantined_records} records,"
        f" {recovered.quarantined_bytes} bytes -> {recovered.quarantine_path}"
    )
    recovered.close()
    print("offline check (read-only): python -m repro store --db-path ... verify")

    banner("4. Conflict storm through Session.transact: no update lost")
    with repro.connect() as session:
        session.put("counter", obj(0))
        policy = RetryPolicy(max_attempts=16, seed=42)

        def bump():
            for _ in range(25):
                session.transact(
                    lambda txn: txn.put("counter", obj(txn.get("counter").value + 1)),
                    retry=policy,
                )

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print(f"4 writers x 25 increments = {session.get('counter').to_text()}")
        retries = repro.obs.snapshot()["counters"].get("store.retries", 0)
        print(f"conflicts retried so far (process-wide): {retries}")

    banner("5. Lock timeouts: bounded waits instead of hangs")
    lock = RWLock()
    lock.acquire_write()
    try:
        lock.acquire_read(timeout=0.05)
    except LockTimeout as error:
        print(f"reader gave up on time: {error}")
    finally:
        lock.release_write()

    banner("6. Query deadlines: QueryTimeout with the partial work attached")
    with repro.connect() as session:
        session.put("list", repro.parse_object("{[head: 0]}"))
        session.register("[list: {[head: 1, tail: X]}] :- [list: {X}].")
        try:
            session.execute("[list: X]", on_closure=True, timeout_ms=5).all()
        except QueryTimeout as error:
            print(f"timed out: {error}")
            print(f"elapsed_ms={error.elapsed_ms:.1f}, partial attached:"
                  f" {error.partial is not None}")

    print()
    print(f"scratch files left in {scratch} for inspection")


if __name__ == "__main__":
    main()
