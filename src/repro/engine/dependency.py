"""Rule dependency analysis: the scheduler's graph.

The naive fixpoint of :func:`repro.calculus.fixpoint.close` applies *every*
rule on *every* round, even when most rules can no longer contribute anything.
The engine instead orders rules by a conservative dependency relation:

* a rule **writes** at the attribute paths where its head places content;
* a rule **reads** at the attribute paths its body inspects;
* rule ``r2`` depends on ``r1`` when something ``r1`` writes can change what
  ``r2`` reads.

Paths are sequences of tuple-attribute names (reusing
:class:`repro.store.paths.Path`).  Both the read and the write analysis stop
at the first *access point* along a branch — a variable, a constant, or a set
formula — because from there on the affected region is the whole subtree:

* a variable reads (or writes, once instantiated) an arbitrary object below
  its path;
* a ground constant carries content below its path;
* a set formula's witnesses (or contributed elements) live below its path.

Two access points interact exactly when one path is a prefix of the other, so
the dependency test is a pairwise prefix check.  The relation is deliberately
an over-approximation: a spurious edge only costs scheduling freedom, never
correctness, whereas a missing edge would let the scheduler freeze a rule
whose input was still growing.

Strongly-connected components of the dependency graph are the engine's
*strata*: evaluated in topological order, a non-recursive stratum needs a
single application, while a recursive stratum (a cycle, or a rule depending
on itself) is iterated to a local fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.calculus.rules import Rule
from repro.calculus.terms import (
    Constant,
    Formula,
    Parameter,
    SetFormula,
    TupleFormula,
    Variable,
)
from repro.store.paths import Path

__all__ = ["Stratum", "DependencyGraph", "access_paths"]

_ROOT = Path(())


def access_paths(formula: Formula) -> FrozenSet[Path]:
    """The paths of a formula's access points (variables, constants, sets).

    Recursion descends through tuple formulae only; the path of a set formula
    stands for everything inside it, the path of a variable or constant for
    everything it may bind or carry.
    """
    found: Set[Path] = set()

    def walk(node: Formula, path: Path) -> None:
        if isinstance(node, TupleFormula):
            if not len(node):
                # An empty tuple formula matches any tuple: it reads (and a
                # head writes) the tuple's existence at this very path.
                found.add(path)
                return
            for name, child in node.items():
                walk(child, path.child(name))
            return
        if isinstance(node, (SetFormula, Variable, Constant, Parameter)):
            # A parameter is a constant slot whose value arrives at execute
            # time: like a constant, it carries content below its path.
            found.add(path)
            return
        raise TypeError(f"not a formula: {node!r}")

    walk(formula, _ROOT)
    return frozenset(found)


def _is_prefix(shorter: Path, longer: Path) -> bool:
    return longer.steps[: len(shorter.steps)] == shorter.steps


def paths_interact(produced: FrozenSet[Path], consumed: FrozenSet[Path]) -> bool:
    """``True`` when some produced path may change some consumed region."""
    for write in produced:
        for read in consumed:
            if _is_prefix(write, read) or _is_prefix(read, write):
                return True
    return False


@dataclass(frozen=True)
class Stratum:
    """One scheduling unit: a strongly-connected component of rules.

    ``recursive`` is ``True`` when the component must be iterated (it contains
    a cycle or a self-dependent rule); otherwise a single application reaches
    the component's fixpoint.
    """

    rules: Tuple[Rule, ...]
    recursive: bool


class DependencyGraph:
    """The produces/consumes graph over a sequence of rules."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._writes = [access_paths(rule.head) for rule in self.rules]
        self._reads = [
            access_paths(rule.body) if rule.body is not None else frozenset()
            for rule in self.rules
        ]
        # edges[i] = indices of rules whose body may observe rule i's output.
        self.edges: Dict[int, Set[int]] = {i: set() for i in range(len(self.rules))}
        for producer in range(len(self.rules)):
            for consumer in range(len(self.rules)):
                if paths_interact(self._writes[producer], self._reads[consumer]):
                    self.edges[producer].add(consumer)

    def depends_on(self, consumer: int, producer: int) -> bool:
        """``True`` when rule ``consumer`` reads what rule ``producer`` writes."""
        return consumer in self.edges[producer]

    # -- strongly-connected components -------------------------------------------
    def sccs(self) -> List[List[int]]:
        """Tarjan's SCCs, in topological order (producers before consumers)."""
        order = len(self.rules)
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        components: List[List[int]] = []
        counter = [0]

        for root in range(order):
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator-position) work list.
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, position = work.pop()
                if position == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                successors = sorted(self.edges[node])
                recurse = False
                for next_position in range(position, len(successors)):
                    successor = successors[next_position]
                    if successor not in index:
                        work.append((node, next_position + 1))
                        work.append((successor, 0))
                        recurse = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index[successor])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        # Tarjan emits components consumers-first; the scheduler wants
        # producers first.
        components.reverse()
        return components

    def strata(self) -> List[Stratum]:
        """SCCs as scheduling strata, producers first."""
        result: List[Stratum] = []
        for component in self.sccs():
            recursive = len(component) > 1 or self.depends_on(
                component[0], component[0]
            )
            result.append(
                Stratum(
                    rules=tuple(self.rules[i] for i in component),
                    recursive=recursive,
                )
            )
        return result

    def __repr__(self) -> str:
        edge_count = sum(len(targets) for targets in self.edges.values())
        return f"<DependencyGraph {len(self.rules)} rules, {edge_count} edges>"
