#!/usr/bin/env python
"""Emit the shape-pruning benchmark record ``BENCH_shapes.json``.

Companion to the other ``run_*_benchmarks.py`` records: this script pins the
**payoff contract** of :mod:`repro.lint.shapes` — statically pruning
shape-dead recursive branches must actually buy wall time, not just look
tidy in EXPLAIN.

The workload is a transitive closure over an edge chain carried alongside a
large ``audit`` set of distinct rows.  The live rules compute ``path``
reachability; four additional recursive rules join ``path`` against an
``audit`` element whose ``status`` attribute would have to be a tuple
``[flag: ...]`` — but every audit row carries the atom ``done`` there, so
each branch is provably empty under shape analysis.  A shape-blind engine
cannot know that: the audit leaf has no usable index key (both its
variables are unbound when it is scanned), so every dead rule re-scans the
whole audit set in **every fixpoint round** of the recursive stratum.  The
benchmark evaluates the program through the semi-naive engine with
``use_shapes`` on and off (plan + run, shape inference included in the
measured time) and records the speedup.  In full mode the run fails unless
pruning is at least ``MIN_SPEEDUP``× faster; both modes assert the two
closures are identical, so the speedup can never come from dropping
answers.

Usage::

    PYTHONPATH=src python benchmarks/run_shape_benchmarks.py [--smoke] [--output PATH]

``--smoke`` shrinks the workload and repetitions so CI can exercise the
harness in seconds; in that mode the speedup is recorded but not enforced.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Enforced floor (full mode): plan+run with pruning vs without.
MIN_SPEEDUP = 3.0

LIVE_RULES = """
[path: {[src: X, dst: Y]}] :- [edge: {[src: X, dst: Y]}].
[path: {[src: X, dst: Z]}] :-
    [path: {[src: X, dst: Y]}, edge: {[src: Y, dst: Z]}].
"""

#: Four shape-dead recursive branches.  Each joins the recursive ``path``
#: stratum against audit rows whose ``status`` attribute would have to be a
#: tuple ``[flag: F]`` — but every generated audit row carries the atom
#: ``done`` there, so the branch is provably empty.  The flag is an unbound
#: variable on purpose: it gives the audit leaf no static or probe-able key,
#: so a shape-blind engine full-scans the audit set on every round, binding
#: ``id`` and ``owner`` per row before the ``status`` mismatch kills it —
#: while shape analysis refutes the literal once, statically.  The variable
#: names differ per rule so the clauses are not duplicates (RL004).
DEAD_RULE = (
    "[path: {{[src: X{k}, dst: X{k}]}}] :-\n"
    "    [path: {{[src: X{k}, dst: _Y{k}]}},"
    " audit: {{[id: _I{k}, owner: W{k}, status: [flag: F{k}]]}}].\n"
)


def build_program(nodes: int, audit_rows: int):
    from repro import Program, parse_object

    edges = ", ".join(
        f"[src: n{i}, dst: n{i + 1}]" for i in range(nodes - 1)
    )
    # Every audit row gets a distinct id: without it the set constructor
    # dedups the repeated tuples and the "large" audit set collapses to
    # ``nodes`` elements, costing a shape-blind engine nothing to scan.
    audits = ", ".join(
        f"[id: a{i}, owner: n{i % nodes}, status: done]"
        for i in range(audit_rows)
    )
    database = parse_object(f"[edge: {{{edges}}}, audit: {{{audits}}}]")
    source = LIVE_RULES + "".join(DEAD_RULE.format(k=k) for k in range(4))
    return Program.from_source(source, database=database)


def _median_ns(func, *, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        func()
        samples.append(time.perf_counter_ns() - start)
    return statistics.median(samples)


def run_suite(smoke: bool) -> dict:
    from repro.engine import create_engine
    from repro.lint.shapes import infer_shapes

    nodes = 16 if smoke else 32
    audit_rows = 600 if smoke else 2000
    repeats = 3 if smoke else 5
    program = build_program(nodes, audit_rows)
    seed = program.seed()

    def evaluate(use_shapes: bool):
        # A fresh engine per run: plan + optimize + (optionally) infer +
        # evaluate is the whole cost being compared.  The inference cache is
        # cleared so the pruned side pays for its own analysis every time.
        infer_shapes.cache_clear()
        return create_engine(
            "seminaive", program.rules, use_shapes=use_shapes
        ).run(seed)

    pruned_result = evaluate(True)
    plain_result = evaluate(False)
    assert pruned_result.value == plain_result.value, (
        "shape pruning changed the closure — soundness bug"
    )
    assert pruned_result.stats.rules_pruned == 4

    pruned_ns = _median_ns(lambda: evaluate(True), repeats=repeats)
    plain_ns = _median_ns(lambda: evaluate(False), repeats=repeats)

    return {
        "schema": "bench-shapes/v1",
        "mode": "smoke" if smoke else "full",
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "min_speedup": MIN_SPEEDUP,
        "workload": {
            "chain_nodes": nodes,
            "audit_rows": audit_rows,
            "dead_recursive_rules": 4,
            "rules_pruned": pruned_result.stats.rules_pruned,
        },
        "benchmarks": {
            "plan_and_run_with_pruning": {"median_ns": round(pruned_ns, 1)},
            "plan_and_run_without_pruning": {"median_ns": round(plain_ns, 1)},
        },
        "speedups": {
            "pruned_vs_plain": round(plain_ns / pruned_ns, 4),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI mode, no enforcement")
    parser.add_argument("--output", default="BENCH_shapes.json", help="where to write the record")
    args = parser.parse_args(argv)

    record = run_suite(args.smoke)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, stats in sorted(record["benchmarks"].items()):
        print(f"{name:32s} {stats['median_ns']:>14,.0f} ns")
    speedup = record["speedups"]["pruned_vs_plain"]
    print(f"speedup pruned_vs_plain {speedup:>17.3f}x")
    print(f"wrote {args.output}")

    if not args.smoke and speedup < MIN_SPEEDUP:
        print(
            f"FAIL: shape pruning bought only {speedup:.3f}x"
            f" (floor {MIN_SPEEDUP:.1f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
