#!/usr/bin/env python
"""Codebase invariants, checked with nothing but the stdlib ``ast`` module.

Four invariants that matter for correctness but that no unit test can pin
(they are properties of the *source*, not of any one execution):

``raw-constructors``
    ``SetObject.raw`` / ``TupleObject.raw`` bypass reduction and interning;
    outside :mod:`repro.core` every object must go through the reducing
    constructors.  A deliberate exception (e.g. the workload generator that
    *needs* an unreduced set to benchmark reduction) carries the pragma
    ``# invariant: allow-raw`` on the offending line.

``fault-points``
    ``repro.fault.injection.KNOWN_POINTS`` is the registry of every fault
    injection point.  Every ``fire("...")`` call site in ``src/`` must name
    a registered point, and every registered point must have at least one
    call site — so the sweep harness and the docs can never drift from the
    real fault surface.

``diagnostic-codes``
    ``repro.lint.diagnostics._REGISTRY`` is the registry of every stable
    ``RLxxx`` diagnostic code.  Every registered code must appear as a row
    in the README's diagnostics table **and** in at least one
    ``tests/lint_corpus/*.expected`` sidecar (so every code has a pinned
    witness program), and every code the README or the corpus mentions must
    be registered — docs, corpus and registry can never drift.  Codes the
    parser makes unreachable from source programs (``RL001``: the ``Rule``
    constructor rejects unbound head variables; ``RL102``: the parser
    rejects ``$parameters`` inside rules) are exempt from the corpus leg
    only.

``lock-discipline``
    Public methods of :class:`repro.store.ObjectDatabase` may only touch the
    lock-protected state (``_storage``, ``_version``, ``_indexes``,
    ``_schemas``, ``_top_names``) inside a ``with self._lock.read_locked()``
    or ``with self._lock.write_locked()`` block.  Private helpers are exempt
    (their contract is "callers hold the lock"); a public-method exception
    (e.g. teardown, which is single-threaded by contract) carries the pragma
    ``# invariant: unlocked-ok``.

Run from the repository root::

    python tools/check_invariants.py

Exit status 0 when every invariant holds, 1 otherwise (one ``path:line:``
diagnostic per violation).  No imports of ``repro`` itself: the checks are
pure source analysis, so they run before the package is even importable.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

ALLOW_RAW_PRAGMA = "invariant: allow-raw"
UNLOCKED_OK_PRAGMA = "invariant: unlocked-ok"

#: ObjectDatabase attributes guarded by ``self._lock``.
PROTECTED_ATTRIBUTES = frozenset(
    {"_storage", "_version", "_indexes", "_schemas", "_top_names"}
)


def _python_sources(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def _parse(path: Path) -> Tuple[ast.Module, List[str]]:
    text = path.read_text(encoding="utf-8")
    return ast.parse(text, filename=str(path)), text.splitlines()


def _relative(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


# -- invariant 1: raw constructors stay inside repro.core --------------------------------


def check_raw_constructors() -> List[str]:
    violations: List[str] = []
    for path in _python_sources(SRC_ROOT):
        if (SRC_ROOT / "core") in path.parents:
            continue
        tree, lines = _parse(path)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "raw"
            ):
                continue
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if ALLOW_RAW_PRAGMA in line:
                continue
            violations.append(
                f"{_relative(path)}:{node.lineno}: raw constructor call outside"
                f" repro.core (use the reducing constructors, or add"
                f" `# {ALLOW_RAW_PRAGMA}` with a justification)"
            )
    return violations


# -- invariant 2: fire() call sites match KNOWN_POINTS -----------------------------------


def _registered_points() -> Tuple[Set[str], Path]:
    path = SRC_ROOT / "fault" / "injection.py"
    tree, _ = _parse(path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "KNOWN_POINTS" not in targets:
            continue
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "frozenset"
            and call.args
        ):
            literal = ast.literal_eval(call.args[0])
            return set(literal), path
    raise SystemExit(
        f"{_relative(path)}: KNOWN_POINTS = frozenset({{...}}) not found — the"
        " fault-point registry moved; update tools/check_invariants.py"
    )


def _fired_points() -> Dict[str, List[str]]:
    sites: Dict[str, List[str]] = {}
    injection = SRC_ROOT / "fault" / "injection.py"
    for path in _python_sources(SRC_ROOT):
        if path == injection:  # the generic fire(point) trampoline lives here
            continue
        tree, _ = _parse(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name != "fire" or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                sites.setdefault(first.value, []).append(
                    f"{_relative(path)}:{node.lineno}"
                )
    return sites


def check_fault_points() -> List[str]:
    registered, registry_path = _registered_points()
    fired = _fired_points()
    violations: List[str] = []
    for point in sorted(set(fired) - registered):
        for site in fired[point]:
            violations.append(
                f"{site}: fire({point!r}) names a point absent from"
                f" KNOWN_POINTS in {_relative(registry_path)}"
            )
    for point in sorted(registered - set(fired)):
        violations.append(
            f"{_relative(registry_path)}: KNOWN_POINTS entry {point!r} has no"
            f" fire(...) call site in src/ — remove it or wire it up"
        )
    return violations


# -- invariant 3: registry codes ↔ README table ↔ corpus sidecars ------------------------

#: Codes no parsed corpus program can produce: the constructor/parser rejects
#: the offending source before the analyzer ever sees it.
CORPUS_EXEMPT = frozenset({"RL001", "RL102"})

CODE_PATTERN = re.compile(r"RL\d{3}")


def _registered_codes() -> Tuple[Set[str], Path]:
    path = SRC_ROOT / "lint" / "diagnostics.py"
    tree, _ = _parse(path)
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            target = node.target.id
        elif isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            target = names[0] if names else None
        if target != "_REGISTRY" or node.value is None:
            continue
        codes = set()
        for call in ast.walk(node.value):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "CodeInfo"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                codes.add(call.args[0].value)
        if codes:
            return codes, path
    raise SystemExit(
        f"{_relative(path)}: _REGISTRY = (CodeInfo(...), ...) not found — the"
        " diagnostics registry moved; update tools/check_invariants.py"
    )


def _readme_codes() -> Tuple[Set[str], Path]:
    path = REPO_ROOT / "README.md"
    codes: Set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        # Only table rows count as documentation: a code mentioned in prose
        # or an example transcript does not document its meaning.
        if line.lstrip().startswith("|"):
            codes.update(CODE_PATTERN.findall(line))
    return codes, path


def _corpus_codes() -> Tuple[Set[str], Path]:
    root = REPO_ROOT / "tests" / "lint_corpus"
    codes: Set[str] = set()
    for sidecar in sorted(root.glob("*.expected")):
        codes.update(CODE_PATTERN.findall(sidecar.read_text(encoding="utf-8")))
    return codes, root


def check_diagnostic_codes() -> List[str]:
    registered, registry_path = _registered_codes()
    documented, readme_path = _readme_codes()
    pinned, corpus_root = _corpus_codes()
    violations: List[str] = []
    for code in sorted(registered - documented):
        violations.append(
            f"{_relative(readme_path)}: registered code {code} has no row in"
            f" the README diagnostics table — document it"
        )
    for code in sorted(documented - registered):
        violations.append(
            f"{_relative(readme_path)}: README documents {code} but"
            f" {_relative(registry_path)} does not register it"
        )
    for code in sorted(registered - pinned - CORPUS_EXEMPT):
        violations.append(
            f"{_relative(corpus_root)}: registered code {code} appears in no"
            f" *.expected sidecar — add a witness program that produces it"
        )
    for code in sorted(pinned - registered):
        violations.append(
            f"{_relative(corpus_root)}: a sidecar expects {code} but"
            f" {_relative(registry_path)} does not register it"
        )
    return violations


# -- invariant 4: ObjectDatabase lock discipline -----------------------------------------


def _is_lock_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("read_locked", "write_locked")
            and isinstance(expr.func.value, ast.Attribute)
            and expr.func.value.attr == "_lock"
            and isinstance(expr.func.value.value, ast.Name)
            and expr.func.value.value.id == "self"
        ):
            return True
    return False


def _unlocked_protected_accesses(
    node: ast.AST, locked: bool
) -> Iterator[ast.Attribute]:
    if isinstance(node, ast.With) and _is_lock_with(node):
        locked = True
    if (
        isinstance(node, ast.Attribute)
        and node.attr in PROTECTED_ATTRIBUTES
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and not locked
    ):
        yield node
    for child in ast.iter_child_nodes(node):
        yield from _unlocked_protected_accesses(child, locked)


def check_lock_discipline() -> List[str]:
    path = SRC_ROOT / "store" / "database.py"
    tree, lines = _parse(path)
    violations: List[str] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "ObjectDatabase"):
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.startswith("_"):
                continue  # private helpers: "callers hold the lock"
            for access in _unlocked_protected_accesses(method, locked=False):
                line = lines[access.lineno - 1] if access.lineno <= len(lines) else ""
                if UNLOCKED_OK_PRAGMA in line:
                    continue
                violations.append(
                    f"{_relative(path)}:{access.lineno}: ObjectDatabase."
                    f"{method.name} touches self.{access.attr} outside"
                    f" `with self._lock.read_locked()/write_locked()` (add the"
                    f" lock, or `# {UNLOCKED_OK_PRAGMA}` with a justification)"
                )
    return violations


# -- entry point -------------------------------------------------------------------------


def main() -> int:
    checks = (
        ("raw-constructors", check_raw_constructors),
        ("fault-points", check_fault_points),
        ("diagnostic-codes", check_diagnostic_codes),
        ("lock-discipline", check_lock_discipline),
    )
    failures = 0
    for name, check in checks:
        violations = check()
        if violations:
            failures += len(violations)
            print(f"invariant {name}: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  {violation}")
        else:
            print(f"invariant {name}: ok")
    if failures:
        print(f"\n{failures} invariant violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
