"""Flat relations with controlled size and join selectivity.

The selection/join/intersection benchmarks (B4–B6) need the same logical data
in two physical forms: as :class:`repro.relational.relation.Relation` values
for the relational-algebra baseline and as a single complex object (a tuple of
set-of-tuple relations) for the calculus.  :class:`JoinWorkload` packages both
views plus the parameters that produced them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

from repro.core.objects import ComplexObject
from repro.relational.bridge import database_to_object
from repro.relational.database import RelationalDatabase
from repro.relational.relation import Relation

__all__ = ["make_relation", "JoinWorkload", "make_join_workload"]


def _as_rng(rng: Union[random.Random, int, None]) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng if rng is not None else 0)


def make_relation(
    rows: int,
    *,
    name: str = "r",
    key_attribute: str = "a",
    value_attribute: str = "b",
    value_domain: int = 10,
    rng: Union[random.Random, int, None] = None,
) -> Relation:
    """A two-column relation ``name(key_attribute, value_attribute)``.

    Keys are unique integers; values are drawn uniformly from a domain of
    ``value_domain`` strings, so ``select(..., value=...)`` has selectivity
    roughly ``1/value_domain``.
    """
    rng = _as_rng(rng)
    domain = [f"v{index}" for index in range(value_domain)]
    data = [
        {key_attribute: index, value_attribute: rng.choice(domain)} for index in range(rows)
    ]
    return Relation((key_attribute, value_attribute), data, name=name)


@dataclass(frozen=True)
class JoinWorkload:
    """Two relations sharing a join domain, in relational and object form."""

    left: Relation
    right: Relation
    database: RelationalDatabase
    as_object: ComplexObject
    join_domain: int
    rows: int


def make_join_workload(
    rows: int,
    *,
    join_domain: int = 20,
    rng: Union[random.Random, int, None] = None,
) -> JoinWorkload:
    """Build the Example 4.2(3) join workload at a given scale.

    ``r1(a, b)`` holds ``rows`` tuples whose ``b`` values are drawn from a
    domain of ``join_domain`` symbols; ``r2(c, d)`` holds ``rows`` tuples whose
    ``c`` values are drawn from the same domain.  Smaller domains mean more
    join partners per tuple.
    """
    rng = _as_rng(rng)
    domain = [f"k{index}" for index in range(join_domain)]
    left = Relation(
        ("a", "b"),
        [{"a": index, "b": rng.choice(domain)} for index in range(rows)],
        name="r1",
    )
    right = Relation(
        ("c", "d"),
        [{"c": rng.choice(domain), "d": index * 7 % 1000} for index in range(rows)],
        name="r2",
    )
    database = RelationalDatabase({"r1": left, "r2": right})
    return JoinWorkload(
        left=left,
        right=right,
        database=database,
        as_object=database_to_object(database),
        join_domain=join_domain,
        rows=rows,
    )
