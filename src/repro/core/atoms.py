"""Atomic values of the complex-object model.

Definition 2.1(i) of the paper admits exactly four kinds of atomic objects:
integers, floats, strings, and booleans.  This module centralises the notion
of an *atomic value* (the raw Python payload carried by an
:class:`repro.core.objects.Atom`) so that every other module agrees on which
Python values are acceptable and on how two atomic values compare.

Two details deserve attention:

* ``bool`` is a subclass of ``int`` in Python and ``1 == 1.0`` is true, but the
  paper treats atoms of different sorts as distinct objects ("two atomic
  objects are equal if and only if they are the same").  We therefore tag each
  value with its sort so that ``Atom(1)``, ``Atom(1.0)`` and ``Atom(True)`` are
  three different complex objects.
* Atomic values must be totally ordered *within a sort* so that set objects can
  be stored canonically.  Between sorts we order by the sort tag.
"""

from __future__ import annotations

from typing import Tuple, Union

AtomValue = Union[bool, int, float, str]
"""Type alias for the Python payloads allowed inside an atom."""

#: Sort tags, in the (arbitrary but fixed) canonical order used by sort keys.
BOOL_SORT = "bool"
INT_SORT = "int"
FLOAT_SORT = "float"
STRING_SORT = "string"

_SORT_ORDER = {BOOL_SORT: 0, INT_SORT: 1, FLOAT_SORT: 2, STRING_SORT: 3}


def is_atom_value(value: object) -> bool:
    """Return ``True`` when ``value`` may be the payload of an atomic object."""
    return isinstance(value, (bool, int, float, str))


def atom_sort(value: AtomValue) -> str:
    """Return the sort tag (``"bool"``, ``"int"``, ``"float"`` or ``"string"``).

    ``bool`` must be tested before ``int`` because it is a subclass of ``int``.
    """
    if isinstance(value, bool):
        return BOOL_SORT
    if isinstance(value, int):
        return INT_SORT
    if isinstance(value, float):
        return FLOAT_SORT
    if isinstance(value, str):
        return STRING_SORT
    raise TypeError(f"not an atomic value: {value!r}")


def atom_key(value: AtomValue) -> Tuple[int, object]:
    """Return a totally ordered key for an atomic value.

    The key orders first by sort, then by the value itself; values of the same
    sort are always mutually comparable, so the key is usable for sorting
    heterogeneous collections of atoms.
    """
    sort = atom_sort(value)
    if sort == BOOL_SORT:
        return (_SORT_ORDER[sort], int(value))
    return (_SORT_ORDER[sort], value)


def atoms_identical(left: AtomValue, right: AtomValue) -> bool:
    """Paper equality for atomic values: same sort and same value.

    This deliberately distinguishes ``1`` from ``1.0`` and from ``True`` even
    though plain Python ``==`` would conflate them.
    """
    return atom_sort(left) == atom_sort(right) and left == right
