"""Unit tests for schema conformance checking (repro.schema.check)."""

import pytest

from repro import parse_formula, parse_object, parse_rule
from repro.core.builder import obj
from repro.core.errors import SchemaError
from repro.core.objects import BOTTOM, TOP
from repro.schema.check import check_formula, check_object, check_rule, conforms
from repro.schema.types import (
    any_type,
    empty_type,
    integer,
    set_type,
    string,
    tuple_type,
    union_type,
)

PERSON = tuple_type({"name": string(), "age": integer()}, required=["name"])
RELATION = set_type(PERSON)
DATABASE = tuple_type({"r1": RELATION}, required=["r1"])


class TestCheckObject:
    def test_conforming_objects(self):
        assert conforms(obj({"name": "peter", "age": 25}), PERSON)
        assert conforms(obj({"name": "peter"}), PERSON)  # age optional
        assert conforms(parse_object("{[name: peter], [name: john, age: 7]}"), RELATION)
        assert conforms(BOTTOM, PERSON)  # ⊥ conforms to everything

    def test_any_and_empty(self):
        assert conforms(parse_object("{1, [a: 2]}"), any_type())
        assert conforms(BOTTOM, empty_type())
        assert not conforms(obj(1), empty_type())

    def test_top_conforms_to_nothing_but_any(self):
        assert conforms(TOP, any_type())
        assert not conforms(TOP, PERSON)

    def test_wrong_sort_reported_with_path(self):
        issues = check_object(obj({"name": 42}), PERSON)
        assert len(issues) == 1
        assert issues[0].path == "name"
        assert "string" in issues[0].message

    def test_missing_required_attribute(self):
        issues = check_object(obj({"age": 3}), PERSON)
        assert any("missing required" in issue.message for issue in issues)

    def test_closed_tuple_rejects_extra_attributes(self):
        issues = check_object(obj({"name": "x", "extra": 1}), PERSON)
        assert any(issue.path == "extra" for issue in issues)

    def test_open_tuple_accepts_extra_attributes(self):
        open_person = tuple_type({"name": string()}, required=["name"], open=True)
        assert conforms(obj({"name": "x", "extra": 1}), open_person)

    def test_set_elements_located_by_index(self):
        issues = check_object(parse_object("{[name: peter], [name: 42]}"), RELATION)
        assert len(issues) == 1
        assert "[" in issues[0].path and "]" in issues[0].path

    def test_nested_paths(self):
        issues = check_object(parse_object("[r1: {[name: 42]}]"), DATABASE)
        assert issues[0].path.startswith("r1[")

    def test_union_types(self):
        flexible = union_type(integer(), string())
        assert conforms(obj(1), flexible)
        assert conforms(obj("x"), flexible)
        assert not conforms(obj(True), flexible)

    def test_strict_mode_raises(self):
        with pytest.raises(SchemaError):
            check_object(obj({"name": 42}), PERSON, strict=True)


class TestCheckFormula:
    def test_variables_always_conform(self):
        assert check_formula(parse_formula("X"), PERSON) == []
        assert check_formula(parse_formula("[r1: {[name: X]}]"), DATABASE) == []

    def test_constants_checked(self):
        issues = check_formula(parse_formula("[r1: {[name: 42]}]"), DATABASE)
        assert issues

    def test_undeclared_attribute_in_pattern(self):
        issues = check_formula(parse_formula("[r1: {[salary: X]}]"), DATABASE)
        assert any("not declared" in issue.message for issue in issues)

    def test_pattern_kind_mismatch(self):
        issues = check_formula(parse_formula("{X}"), DATABASE)
        assert issues
        issues = check_formula(parse_formula("[a: X]"), set_type(integer()))
        assert issues

    def test_any_accepts_every_pattern(self):
        assert check_formula(parse_formula("[weird: {[deep: X]}]"), any_type()) == []


class TestCheckRule:
    def test_body_checked_against_database_schema(self):
        rule = parse_rule("[out: {X}] :- [r1: {[name: X]}]")
        assert check_rule(rule, DATABASE) == []
        bad = parse_rule("[out: {X}] :- [r1: {[salary: X]}]")
        assert check_rule(bad, DATABASE)

    def test_head_checked_only_when_schema_given(self):
        rule = parse_rule("[out: {[salary: X]}] :- [r1: {[name: X]}]")
        assert check_rule(rule, DATABASE) == []
        head_schema = tuple_type({"out": set_type(PERSON)})
        assert check_rule(rule, DATABASE, head_schema)

    def test_fact_heads_ignored_without_head_schema(self):
        fact = parse_rule("[out: {[name: peter]}].")
        assert check_rule(fact, DATABASE) == []
