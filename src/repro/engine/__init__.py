"""repro.engine — a pluggable evaluation engine for calculus rule sets.

The naive fixpoint of :mod:`repro.calculus.fixpoint` re-matches every rule
body against the entire database on every round.  This subsystem brings the
evaluation technology the flat Datalog layer already enjoys to the
complex-object calculus itself:

* :mod:`repro.engine.dependency` — a rule dependency graph whose
  strongly-connected components, in topological order, are the scheduler's
  strata: non-recursive strata are applied once, recursive ones iterated;
* :mod:`repro.engine.delta` — semi-naive delta decomposition of rule bodies,
  so each round only matches against sub-objects contributed by the previous
  round (with a full-matching fallback for bodies that cannot be decomposed);
* :mod:`repro.engine.indexes` — match indexes over set elements keyed by
  attribute paths of body formulae, maintained incrementally as the closure
  grows;
* :mod:`repro.engine.matching` — the delta- and index-aware matcher, a thin
  front over the shared plan pipeline of :mod:`repro.plan` (bodies compile
  into logical plans, the cost-based optimizer orders their joins, and one
  physical executor serves every evaluation path);
* :mod:`repro.engine.stats` — the :class:`EngineStats` instrumentation record;
* :mod:`repro.engine.core` — the :class:`NaiveEngine` / :class:`SemiNaiveEngine`
  strategies behind ``Program.evaluate(engine=...)`` and the CLI's
  ``--engine`` flag.

Quick use::

    from repro import Program

    program = Program.from_source(source, database=db)
    result = program.evaluate(engine="seminaive")
    print(result.stats.summary())
"""

from repro.engine.core import (
    ENGINES,
    EngineResult,
    NaiveEngine,
    SemiNaiveEngine,
    create_engine,
)
from repro.engine.delta import BodyDecomposition, DeltaPosition, decompose, new_set_elements
from repro.engine.dependency import DependencyGraph, Stratum, access_paths
from repro.engine.indexes import IndexStore, MatchIndex, element_keys
from repro.engine.matching import match_body
from repro.engine.stats import EngineStats

__all__ = [
    "ENGINES",
    "BodyDecomposition",
    "DeltaPosition",
    "DependencyGraph",
    "EngineResult",
    "EngineStats",
    "IndexStore",
    "MatchIndex",
    "NaiveEngine",
    "SemiNaiveEngine",
    "Stratum",
    "access_paths",
    "create_engine",
    "decompose",
    "element_keys",
    "match_body",
    "new_set_elements",
]
